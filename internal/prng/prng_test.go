package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Distinct inputs must give distinct outputs (spot check a
	// range; Mix64 is a documented bijection).
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestHash3Deterministic(t *testing.T) {
	if Hash3(1, 2, 3) != Hash3(1, 2, 3) {
		t.Fatal("Hash3 not deterministic")
	}
	if Hash3(1, 2, 3) == Hash3(1, 3, 2) {
		t.Error("Hash3 should distinguish argument order")
	}
	if Hash3(1, 2, 3) == Hash3(2, 2, 3) {
		t.Error("Hash3 should distinguish seeds")
	}
}

func TestHash3NegativeCoords(t *testing.T) {
	// Negative coordinates are legal (used for per-task phases).
	if Hash3(7, -1, 5) == Hash3(7, 1, 5) {
		t.Error("Hash3 should distinguish negative coordinates")
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(h uint64) bool {
		v := Float64(h)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSourceFloat64Distribution(t *testing.T) {
	src := New(42)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := src.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v too far from 0.5", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("variance %v too far from 1/12", variance)
	}
}

func TestSourceIntn(t *testing.T) {
	src := New(1)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		counts[src.Intn(7)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(7) value %d count %d implausible", v, c)
		}
	}
}

func TestSourceIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestSourceRange(t *testing.T) {
	src := New(9)
	for i := 0; i < 1000; i++ {
		v := src.Range(2.5, 3.5)
		if v < 2.5 || v >= 3.5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestSourceNormal(t *testing.T) {
	src := New(11)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := src.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if sd := math.Sqrt(sumSq/n - mean*mean); math.Abs(sd-1) > 0.02 {
		t.Errorf("normal sd %v too far from 1", sd)
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(5).Fork()
	b := New(5).Fork()
	// Same parent state gives the same fork.
	if a.Uint64() != b.Uint64() {
		t.Error("forks of identical sources should match")
	}
	// A fork differs from its parent's continued stream.
	p := New(5)
	f := p.Fork()
	if p.Uint64() == f.Uint64() {
		t.Error("fork should diverge from parent stream")
	}
}

func TestCloneContinuesStream(t *testing.T) {
	s := New(42)
	s.Uint64() // advance into the stream
	c := s.Clone()
	for i := 0; i < 16; i++ {
		if a, b := s.Uint64(), c.Uint64(); a != b {
			t.Fatalf("step %d: clone diverged: %x != %x", i, a, b)
		}
	}
	// Cloning must not advance the receiver.
	s2 := New(7)
	want := New(7).Uint64()
	s2.Clone()
	if got := s2.Uint64(); got != want {
		t.Errorf("Clone advanced the receiver: %x != %x", got, want)
	}
}

func TestZeroValueSourceUsable(t *testing.T) {
	var s Source
	v := s.Float64()
	if v < 0 || v >= 1 {
		t.Fatalf("zero-value Source produced %v", v)
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := New(0xfeedface)
	// Advance to an arbitrary mid-stream position.
	for i := 0; i < 37; i++ {
		s.Uint64()
	}
	st := s.State()

	// A fresh source restored to the captured position must emit the
	// identical stream as a clone taken at the same instant.
	restored := New(0)
	restored.SetState(st)
	ref := s.Clone()
	for i := 0; i < 1000; i++ {
		if a, b := restored.Uint64(), ref.Uint64(); a != b {
			t.Fatalf("step %d: restored stream diverged: %x != %x", i, a, b)
		}
	}

	// State must not advance the receiver.
	s2 := New(9)
	want := New(9).Uint64()
	s2.State()
	if got := s2.Uint64(); got != want {
		t.Errorf("State advanced the receiver: %x != %x", got, want)
	}

	// Float64 substreams restore identically too.
	a, b := New(0), New(0)
	a.Float64()
	b.SetState(a.State())
	if x, y := a.Float64(), b.Float64(); x != y {
		t.Errorf("Float64 after restore: %v != %v", x, y)
	}
}
