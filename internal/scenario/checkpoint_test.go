package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dvsslack/internal/audit"
	"dvsslack/internal/policies"
	"dvsslack/internal/sim"
	"dvsslack/internal/snapshot"
)

// TestCheckpointScenarios pins the snapshot round-trip over every
// scenarios/ document: activity windows, workload shaping, overrides,
// jitter, and horizons all travel through a mid-run checkpoint and
// finish bit-identically to the straight-through run. Documents where
// misses or violations are the expected outcome must reproduce those
// too.
func TestCheckpointScenarios(t *testing.T) {
	docs, err := filepath.Glob("../../scenarios/*.yaml")
	if err != nil || len(docs) == 0 {
		t.Fatalf("no scenario documents found: %v", err)
	}
	for _, path := range docs {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			doc, errs := Parse(filepath.Base(path), data)
			if len(errs) > 0 {
				t.Fatalf("%v", errs[0])
			}
			for _, spec := range samplePolicies(doc.Policies) {
				checkpointCompareDoc(t, doc, spec)
			}
		})
	}
}

// samplePolicies bounds per-document cost to three representative
// policies.
func samplePolicies(specs []string) []string {
	if len(specs) <= 3 {
		return specs
	}
	return []string{specs[0], specs[len(specs)/2], specs[len(specs)-1]}
}

// checkpointCompareDoc mirrors runPolicy's config construction
// exactly, but drives the engine stepwise with a capture/restore at
// the midpoint.
func checkpointCompareDoc(t *testing.T, doc *Document, spec string) {
	t.Helper()
	mkRun := func() (sim.Config, *audit.Auditor) {
		ts := doc.taskSet()
		proc, err := doc.Processor.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		gen, err := doc.Workload.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if sw := newShapedWorkload(doc, gen, ts); sw != nil {
			gen = sw
		}
		pol, err := policies.New(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		aud := audit.New(audit.Options{TaskSet: ts, Processor: proc})
		return sim.Config{
			TaskSet:       ts,
			Processor:     proc,
			Policy:        pol,
			Workload:      gen,
			Horizon:       doc.Horizon,
			Observer:      aud,
			JitterSeed:    doc.JitterSeed,
			ActiveWindows: doc.activeWindows(ts),
		}, aud
	}

	cfg0, aud0 := mkRun()
	e0, err := sim.NewEngine(cfg0)
	if err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	total := 0
	for e0.Step() {
		total++
	}
	res0, err0 := e0.Finish()
	rep0 := aud0.Finish(res0)

	cfg1, aud1 := mkRun()
	e1, err := sim.NewEngine(cfg1)
	if err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	for i := 0; i < total/2 && e1.Step(); i++ {
	}
	key := doc.Name + "/" + spec
	data, err := snapshot.Capture(key, e1, aud1)
	if err != nil {
		t.Fatalf("%s: capture: %v", spec, err)
	}

	cfg2, aud2 := mkRun()
	e2, err := snapshot.Restore(data, key, cfg2, aud2)
	if err != nil {
		t.Fatalf("%s: restore: %v", spec, err)
	}
	for e2.Step() {
	}
	res2, err2 := e2.Finish()
	rep2 := aud2.Finish(res2)

	if (err2 == nil) != (err0 == nil) || (err0 != nil && err2.Error() != err0.Error()) {
		t.Errorf("%s: restored run error %v, straight-through %v", spec, err2, err0)
	}
	if !reflect.DeepEqual(res2, res0) {
		t.Errorf("%s: restored result differs:\n got  %+v\n want %+v", spec, res2, res0)
	}
	if !reflect.DeepEqual(rep2, rep0) {
		t.Errorf("%s: restored audit report differs:\n got  %+v\n want %+v", spec, rep2, rep0)
	}
}
