package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// MarshalYAML renders a document in the package's YAML subset —
// round-trippable through Parse. `dvsscen convert` uses it to lift
// fuzz corpus entries into the scenarios/ corpus.
func MarshalYAML(doc *Document) []byte {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("version: %d\n", doc.Version)
	w("name: %s\n", yamlScalar(doc.Name))
	if doc.Description != "" {
		w("description: %s\n", yamlScalar(doc.Description))
	}
	if doc.Horizon != 0 {
		w("horizon: %s\n", yamlNum(doc.Horizon))
	}
	if doc.JitterSeed != 0 {
		w("jitter_seed: %d\n", doc.JitterSeed)
	}
	w("policies: [%s]\n", yamlList(doc.Policies))

	w("tasks:\n")
	for _, t := range doc.Tasks {
		w("  - name: %s\n", yamlScalar(t.Name))
		w("    wcet: %s\n", yamlNum(t.WCET))
		w("    period: %s\n", yamlNum(t.Period))
		if t.Deadline != 0 {
			w("    deadline: %s\n", yamlNum(t.Deadline))
		}
		if t.Jitter != 0 {
			w("    jitter: %s\n", yamlNum(t.Jitter))
		}
	}

	p := doc.Processor
	var pl []string
	add := func(dst *[]string, cond bool, format string, args ...any) {
		if cond {
			*dst = append(*dst, fmt.Sprintf(format, args...))
		}
	}
	add(&pl, p.Preset != "", "preset: %s", yamlScalar(p.Preset))
	add(&pl, p.SMin != 0, "smin: %s", yamlNum(p.SMin))
	if len(p.Levels) > 0 {
		nums := make([]string, len(p.Levels))
		for i, v := range p.Levels {
			nums[i] = yamlNum(v)
		}
		pl = append(pl, "levels: ["+strings.Join(nums, ", ")+"]")
	}
	add(&pl, p.Model != "", "model: %s", yamlScalar(p.Model))
	add(&pl, p.AlphaVt != 0, "alpha_vt: %s", yamlNum(p.AlphaVt))
	add(&pl, p.AlphaIdx != 0, "alpha_idx: %s", yamlNum(p.AlphaIdx))
	add(&pl, p.TableName != "", "table_name: %s", yamlScalar(p.TableName))
	add(&pl, p.IdlePower != nil, "idle_power: %s", yamlNumPtr(p.IdlePower))
	add(&pl, p.SwitchTime != 0, "switch_time: %s", yamlNum(p.SwitchTime))
	add(&pl, p.SwitchEnergyCoeff != 0, "switch_energy_coeff: %s", yamlNum(p.SwitchEnergyCoeff))
	add(&pl, p.LeakagePower != 0, "leakage_power: %s", yamlNum(p.LeakagePower))
	add(&pl, p.SleepEnabled, "sleep_enabled: true")
	add(&pl, p.SleepPower != 0, "sleep_power: %s", yamlNum(p.SleepPower))
	add(&pl, p.WakeEnergy != 0, "wake_energy: %s", yamlNum(p.WakeEnergy))
	if len(pl) > 0 {
		w("processor:\n")
		for _, line := range pl {
			w("  %s\n", line)
		}
		if len(p.Table) > 0 {
			w("  table:\n")
			for _, lv := range p.Table {
				w("    - speed: %s\n", yamlNum(lv.Speed))
				w("      voltage: %s\n", yamlNum(lv.Voltage))
			}
		}
	}

	wl := doc.Workload
	var wls []string
	add(&wls, wl.Kind != "", "kind: %s", yamlScalar(wl.Kind))
	add(&wls, wl.Lo != 0, "lo: %s", yamlNum(wl.Lo))
	add(&wls, wl.Hi != 0, "hi: %s", yamlNum(wl.Hi))
	add(&wls, wl.Frac != 0, "frac: %s", yamlNum(wl.Frac))
	add(&wls, wl.Mean != 0, "mean: %s", yamlNum(wl.Mean))
	add(&wls, wl.StdDev != 0, "std_dev: %s", yamlNum(wl.StdDev))
	add(&wls, wl.LightFrac != 0, "light_frac: %s", yamlNum(wl.LightFrac))
	add(&wls, wl.HeavyFrac != 0, "heavy_frac: %s", yamlNum(wl.HeavyFrac))
	add(&wls, wl.PHeavy != 0, "p_heavy: %s", yamlNum(wl.PHeavy))
	add(&wls, wl.Amp != 0, "amp: %s", yamlNum(wl.Amp))
	add(&wls, wl.PeriodJobs != 0, "period_jobs: %s", yamlNum(wl.PeriodJobs))
	add(&wls, wl.Jitter != 0, "jitter: %s", yamlNum(wl.Jitter))
	add(&wls, wl.Seed != 0, "seed: %d", wl.Seed)
	if len(wls) > 0 {
		w("workload:\n")
		for _, line := range wls {
			w("  %s\n", line)
		}
	}

	if len(doc.Timeline) > 0 {
		w("timeline:\n")
		for _, ev := range doc.Timeline {
			var ls []string
			ls = append(ls, fmt.Sprintf("event: %s", yamlScalar(ev.Event)))
			add(&ls, ev.At != 0, "at: %s", yamlNum(ev.At))
			add(&ls, ev.Until != 0, "until: %s", yamlNum(ev.Until))
			add(&ls, ev.Task != "", "task: %s", yamlScalar(ev.Task))
			add(&ls, ev.Job != 0, "job: %d", ev.Job)
			add(&ls, ev.Frac != 0, "frac: %s", yamlNum(ev.Frac))
			add(&ls, ev.Seed != 0, "seed: %d", ev.Seed)
			add(&ls, ev.PDelay != 0, "p_delay: %s", yamlNum(ev.PDelay))
			add(&ls, ev.PError != 0, "p_error: %s", yamlNum(ev.PError))
			add(&ls, ev.PDrop != 0, "p_drop: %s", yamlNum(ev.PDrop))
			add(&ls, ev.PTruncate != 0, "p_truncate: %s", yamlNum(ev.PTruncate))
			add(&ls, ev.MaxAttempts != 0, "max_attempts: %d", ev.MaxAttempts)
			writeItem(&b, ls)
		}
	}

	w("assertions:\n")
	for _, a := range doc.Assertions {
		var ls []string
		ls = append(ls, fmt.Sprintf("kind: %s", yamlScalar(a.Kind)))
		add(&ls, a.Policy != "", "policy: %s", yamlScalar(a.Policy))
		add(&ls, a.Reference != "", "reference: %s", yamlScalar(a.Reference))
		add(&ls, a.Max != 0, "max: %s", yamlNum(a.Max))
		add(&ls, a.Count != 0, "count: %d", a.Count)
		if a.Expect != nil {
			ls = append(ls, "expect: ["+yamlList(a.Expect)+"]")
		}
		writeItem(&b, ls)
	}
	return []byte(b.String())
}

// writeItem emits one sequence item in compact `- key: value` form.
func writeItem(b *strings.Builder, lines []string) {
	for i, l := range lines {
		if i == 0 {
			fmt.Fprintf(b, "  - %s\n", l)
		} else {
			fmt.Fprintf(b, "    %s\n", l)
		}
	}
}

// yamlScalar quotes a string when the plain form would not reparse
// cleanly.
func yamlScalar(s string) string {
	if s == "" {
		return `""`
	}
	plain := !strings.ContainsAny(s, ":#'\"[]{},\n") &&
		!strings.HasPrefix(s, "-") && !strings.HasPrefix(s, " ") &&
		!strings.HasSuffix(s, " ")
	if plain {
		// Plain scalars that would reparse as numbers or booleans
		// must be quoted to stay strings.
		if _, err := strconv.ParseFloat(s, 64); err == nil || s == "true" || s == "false" {
			return strconv.Quote(s)
		}
		return s
	}
	return strconv.Quote(s)
}

func yamlList(items []string) string {
	quoted := make([]string, len(items))
	for i, s := range items {
		quoted[i] = yamlScalar(s)
	}
	return strings.Join(quoted, ", ")
}

// yamlNum renders a float in its shortest round-trip form.
func yamlNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func yamlNumPtr(v *float64) string {
	if v == nil {
		return "0"
	}
	return yamlNum(*v)
}
