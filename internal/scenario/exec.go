package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"dvsslack/internal/audit"
	"dvsslack/internal/obs"
	"dvsslack/internal/policies"
	"dvsslack/internal/resilience"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
)

// ObserverHook supplies an extra sim.Observer for one policy run
// (nil for none). Observers are passive — they only read the state
// the engine hands every observer — so a hook can watch a run (e.g.
// the decision flight recorder behind dvsscen run --explain) without
// changing a single verdict byte; TestExecuteObservedVerdictBytes
// pins that.
type ObserverHook func(spec string, pol sim.Policy) sim.Observer

// defaultMaxAttempts bounds the chaos retry harness when the chaos
// event does not set max_attempts.
const defaultMaxAttempts = 4

// Verdict is the canonical result of executing a scenario. Render it
// with JSON (below) — every producer (dvsscen, dvsd, dvsfleet) emits
// those exact bytes, so verdicts compare with cmp.
type Verdict struct {
	// Schema is the verdict schema version (equals the document
	// schema version).
	Schema int `json:"schema"`
	// Scenario is the document name.
	Scenario string `json:"scenario"`
	// Ok reports whether every assertion (including the implicit
	// policies-ran check) passed.
	Ok bool `json:"ok"`
	// Policies lists one audited run per document policy, in
	// document order.
	Policies []PolicyRun `json:"policies"`
	// Assertions lists each check's outcome, implicit first.
	Assertions []AssertionResult `json:"assertions"`
	// Chaos reports the fault-injection harness when the timeline
	// declared a chaos event.
	Chaos *ChaosVerdict `json:"chaos,omitempty"`
}

// PolicyRun is one policy's audited simulation.
type PolicyRun struct {
	Policy string `json:"policy"`
	// Err is set when the run failed outright (engine error, chaos
	// attempts exhausted); the numeric fields are then zero.
	Err            string            `json:"err,omitempty"`
	DeadlineMisses int               `json:"deadline_misses"`
	Energy         float64           `json:"energy"`
	JobsReleased   int               `json:"jobs_released"`
	JobsCompleted  int               `json:"jobs_completed"`
	Violations     []audit.Violation `json:"violations,omitempty"`
	Truncated      bool              `json:"truncated,omitempty"`
	// Attempts counts harness attempts for this policy: 1 without
	// chaos, possibly more under it.
	Attempts int `json:"attempts"`
}

// AssertionResult is one assertion's outcome.
type AssertionResult struct {
	Kind string `json:"kind"`
	// Policy/Reference echo the assertion's scope when set.
	Policy    string `json:"policy,omitempty"`
	Reference string `json:"reference,omitempty"`
	Ok        bool   `json:"ok"`
	// Detail explains a failure (empty on success).
	Detail string `json:"detail,omitempty"`
}

// ChaosVerdict summarizes the deterministic fault harness.
type ChaosVerdict struct {
	Seed        uint64 `json:"seed"`
	MaxAttempts int    `json:"max_attempts"`
	// Faults counts injected faults by class over the whole run
	// (JSON renders map keys sorted, so this is deterministic).
	Faults map[string]int `json:"faults,omitempty"`
	// Attempts maps each policy to the attempts it consumed.
	Attempts map[string]int `json:"attempts"`
}

// Execute runs the scenario: every listed policy simulates the same
// compiled configuration under a fresh audit oracle, then the
// assertions are evaluated. Per-policy failures land in the verdict
// (so a failing scenario still yields a comparable report); the error
// return is reserved for context cancellation.
func Execute(ctx context.Context, doc *Document) (*Verdict, error) {
	return ExecuteObserved(ctx, doc, nil)
}

// ExecuteObserved is Execute with a per-run observer hook attached to
// every policy simulation (chained after the audit oracle). A nil
// hook is exactly Execute.
func ExecuteObserved(ctx context.Context, doc *Document, hook ObserverHook) (*Verdict, error) {
	v := &Verdict{Schema: Version, Scenario: doc.Name}
	ts := doc.taskSet()
	windows := doc.activeWindows(ts)
	chaosEv := doc.chaosSpec()

	var chaos *resilience.Chaos
	maxAttempts := 1
	if chaosEv != nil {
		maxAttempts = chaosEv.MaxAttempts
		if maxAttempts <= 0 {
			maxAttempts = defaultMaxAttempts
		}
		cfg := resilience.ChaosConfig{
			Seed:   chaosEv.Seed,
			DelayP: chaosEv.PDelay, ErrorP: chaosEv.PError,
			DropP: chaosEv.PDrop, TruncateP: chaosEv.PTruncate,
		}
		var err error
		chaos, err = resilience.NewChaos(cfg)
		if err != nil {
			// Unreachable for validated documents.
			return nil, err
		}
		v.Chaos = &ChaosVerdict{
			Seed:        chaosEv.Seed,
			MaxAttempts: maxAttempts,
			Faults:      map[string]int{},
			Attempts:    map[string]int{},
		}
	}

	for pi, spec := range doc.Policies {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		run := PolicyRun{Policy: spec}
		// The chaos plan index is a pure function of (policy
		// position, attempt), so the fault sequence is identical
		// regardless of where or how often the document runs.
		lostToChaos := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			run.Attempts = attempt + 1
			if chaos != nil {
				fault, _ := chaos.Plan(uint64(pi*maxAttempts + attempt))
				if fault != resilience.FaultNone {
					v.Chaos.Faults[string(fault)]++
				}
				switch fault {
				case resilience.FaultError, resilience.FaultDrop, resilience.FaultTruncate:
					// The attempt is lost before the simulation
					// completes; retry.
					lostToChaos = true
					continue
				}
				// FaultNone and FaultDelay run to completion (a
				// delay costs wall-clock time, not correctness).
			}
			attempts := attempt + 1
			run = runPolicy(doc, ts, windows, spec, hook)
			run.Attempts = attempts
			lostToChaos = false
			break
		}
		if chaos != nil {
			if lostToChaos {
				run.Err = fmt.Sprintf("chaos: gave up after %d attempts", maxAttempts)
			}
			v.Chaos.Attempts[spec] = run.Attempts
		}
		v.Policies = append(v.Policies, run)
	}

	v.Assertions = evaluate(doc, v)
	v.Ok = true
	for _, a := range v.Assertions {
		if !a.Ok {
			v.Ok = false
		}
	}
	return v, nil
}

// runPolicy executes one audited simulation, mirroring the fuzz
// harness run shape exactly (fresh processor/workload/policy/auditor
// per run) so fuzz-derived scenarios replay to identical outcomes.
func runPolicy(doc *Document, ts *rtm.TaskSet, windows [][]sim.Window, spec string, hook ObserverHook) PolicyRun {
	out := PolicyRun{Policy: spec, Attempts: 1}
	proc, err := doc.Processor.Build()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	gen, err := doc.Workload.Build()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	if sw := newShapedWorkload(doc, gen, ts); sw != nil {
		gen = sw
	}
	pol, err := policies.New(spec)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	aud := audit.New(audit.Options{TaskSet: ts, Processor: proc})
	observer := sim.Observer(aud)
	if hook != nil {
		if extra := hook(spec, pol); extra != nil {
			observer = obs.Multi(observer, extra)
		}
	}
	res, err := sim.Run(sim.Config{
		TaskSet:       ts,
		Processor:     proc,
		Policy:        pol,
		Workload:      gen,
		Horizon:       doc.Horizon,
		Observer:      observer,
		JitterSeed:    doc.JitterSeed,
		ActiveWindows: windows,
	})
	if err != nil {
		out.Err = err.Error()
		return out
	}
	rep := aud.Finish(res)
	out.DeadlineMisses = res.DeadlineMisses
	out.Energy = res.Energy
	out.JobsReleased = res.JobsReleased
	out.JobsCompleted = res.JobsCompleted
	out.Violations = rep.Violations
	out.Truncated = rep.Truncated
	return out
}

// evaluate runs every assertion against the collected policy runs.
func evaluate(doc *Document, v *Verdict) []AssertionResult {
	byPolicy := map[string]*PolicyRun{}
	for i := range v.Policies {
		byPolicy[v.Policies[i].Policy] = &v.Policies[i]
	}
	scoped := func(policy string) []*PolicyRun {
		if policy == "" {
			runs := make([]*PolicyRun, 0, len(v.Policies))
			for i := range v.Policies {
				runs = append(runs, &v.Policies[i])
			}
			return runs
		}
		if r, ok := byPolicy[policy]; ok {
			return []*PolicyRun{r}
		}
		return nil
	}

	hasFingerprint := false
	for _, a := range doc.Assertions {
		if a.Kind == "fingerprint" {
			hasFingerprint = true
		}
	}

	var out []AssertionResult
	// Implicit check: every policy produced a result. Skipped when a
	// fingerprint assertion governs the run — fingerprints pin the
	// exact failure set, errors included, so known-failing
	// reproducers can assert their failure without tripping this.
	if !hasFingerprint {
		r := AssertionResult{Kind: "policies_ran", Ok: true}
		for _, p := range v.Policies {
			if p.Err != "" {
				r.Ok = false
				r.Detail = appendDetail(r.Detail, fmt.Sprintf("%s: %s", p.Policy, p.Err))
			}
		}
		out = append(out, r)
	}

	for _, a := range doc.Assertions {
		r := AssertionResult{Kind: a.Kind, Policy: a.Policy, Reference: a.Reference, Ok: true}
		switch a.Kind {
		case "no_deadline_misses":
			for _, p := range scoped(a.Policy) {
				if p.DeadlineMisses != 0 {
					r.Ok = false
					r.Detail = appendDetail(r.Detail, fmt.Sprintf("%s missed %d deadlines", p.Policy, p.DeadlineMisses))
				}
			}
		case "max_deadline_misses":
			for _, p := range scoped(a.Policy) {
				if p.DeadlineMisses > a.Count {
					r.Ok = false
					r.Detail = appendDetail(r.Detail, fmt.Sprintf("%s missed %d deadlines (max %d)", p.Policy, p.DeadlineMisses, a.Count))
				}
			}
		case "audit_clean":
			for _, p := range scoped(a.Policy) {
				if n := len(p.Violations); n > 0 || p.Truncated {
					r.Ok = false
					detail := fmt.Sprintf("%s: %d audit violations", p.Policy, n)
					if n > 0 {
						detail += " (first: " + p.Violations[0].Invariant + ")"
					}
					r.Detail = appendDetail(r.Detail, detail)
				}
			}
		case "energy_max":
			if p, ok := byPolicy[a.Policy]; ok && p.Energy > a.Max {
				r.Ok = false
				r.Detail = fmt.Sprintf("%s consumed %.6g (max %.6g)", a.Policy, p.Energy, a.Max)
			}
		case "energy_ratio_max":
			p, pok := byPolicy[a.Policy]
			ref, rok := byPolicy[a.Reference]
			if pok && rok && ref.Energy > 0 {
				if ratio := p.Energy / ref.Energy; ratio > a.Max {
					r.Ok = false
					r.Detail = fmt.Sprintf("%s/%s energy ratio %.6g exceeds %.6g", a.Policy, a.Reference, ratio, a.Max)
				}
			} else if !pok || !rok || ref.Energy == 0 {
				r.Ok = false
				r.Detail = "reference energy unavailable"
			}
		case "min_jobs_completed":
			for _, p := range scoped(a.Policy) {
				if p.JobsCompleted < a.Count {
					r.Ok = false
					r.Detail = appendDetail(r.Detail, fmt.Sprintf("%s completed %d jobs (min %d)", p.Policy, p.JobsCompleted, a.Count))
				}
			}
		case "all_jobs_completed":
			for _, p := range scoped(a.Policy) {
				if p.JobsCompleted != p.JobsReleased {
					r.Ok = false
					r.Detail = appendDetail(r.Detail, fmt.Sprintf("%s completed %d of %d released jobs", p.Policy, p.JobsCompleted, p.JobsReleased))
				}
			}
		case "fingerprint":
			got := v.Fingerprint()
			want := append([]string(nil), a.Expect...)
			sort.Strings(want)
			if !equalStrings(got, want) {
				r.Ok = false
				r.Detail = fmt.Sprintf("fingerprint %v, want %v", got, want)
			}
		case "chaos_recovered":
			for _, p := range v.Policies {
				if p.Err != "" {
					r.Ok = false
					r.Detail = appendDetail(r.Detail, fmt.Sprintf("%s: %s", p.Policy, p.Err))
				}
			}
		}
		out = append(out, r)
	}
	return out
}

func appendDetail(detail, more string) string {
	if detail == "" {
		return more
	}
	return detail + "; " + more
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Fingerprint summarizes the verdict's failures as sorted,
// de-duplicated "policy/invariant" pairs, exactly like the fuzz
// harness (a run error contributes "policy/error"), so fuzz corpus
// entries converted to scenarios keep their fingerprints.
func (v *Verdict) Fingerprint() []string {
	seen := map[string]bool{}
	for _, p := range v.Policies {
		if p.Err != "" {
			seen[p.Policy+"/error"] = true
		}
		for _, viol := range p.Violations {
			seen[p.Policy+"/"+viol.Invariant] = true
		}
	}
	fp := make([]string, 0, len(seen))
	for k := range seen {
		fp = append(fp, k)
	}
	sort.Strings(fp)
	return fp
}

// JSON renders the verdict in its canonical byte form: two-space
// indented JSON with a trailing newline. Every producer emits exactly
// these bytes.
func (v *Verdict) JSON() []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Verdict contains only marshalable types.
		panic(err)
	}
	return append(b, '\n')
}

// DocJSON renders a document in its canonical JSON form (two-space
// indent, trailing newline). `dvsscen convert -format json` and the
// corpus tooling use it; Parse reads it back.
func DocJSON(doc *Document) []byte {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// DocKey returns the canonical routing/cache key of a document: the
// hex SHA-256 of its canonical JSON form. Structurally identical
// documents (whether authored as YAML or JSON) share a key, which is
// what the dvsfleet coordinator hashes onto its worker ring.
func DocKey(doc *Document) string {
	b, err := json.Marshal(doc)
	if err != nil {
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
