// Package scenario implements the declarative scenario layer: a
// versioned YAML/JSON document describing a task set, a processor
// model, a timeline of runtime events (workload surges, per-job
// actual-cycle overrides, task arrival/departure, chaos faults), and
// the assertions the run must satisfy. Documents execute
// deterministically through the sim engine with the audit oracle
// attached and yield a canonical JSON Verdict — byte-identical
// whether produced by `dvsscen run`, dvsd's /v1/scenario endpoint,
// or a dvsfleet coordinator.
//
// See docs/scenarios.md for the format reference and scenarios/ for
// the committed corpus.
package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"dvsslack/internal/cpu"
	"dvsslack/internal/policies"
	"dvsslack/internal/rtm"
	"dvsslack/internal/wire"
)

// Version is the schema version this package reads and writes.
const Version = 1

// Document is one parsed scenario.
type Document struct {
	// Version is the schema version; must equal Version (1).
	Version int `json:"version"`
	// Name labels the scenario in verdicts and file names.
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Horizon overrides the simulation length (0 = the engine
	// default: one hyperperiod, or 32 max periods).
	Horizon float64 `json:"horizon,omitempty"`
	// JitterSeed selects the release-jitter stream for tasks that
	// declare jitter.
	JitterSeed uint64 `json:"jitter_seed,omitempty"`
	// Policies lists the policy specs to run (internal/policies
	// vocabulary, e.g. "lpshe", "nondvs", "lpshe+dual").
	Policies []string `json:"policies"`
	// Tasks is the periodic task set.
	Tasks []TaskSpec `json:"tasks"`
	// Processor and Workload are the dvsd wire specs (the zero
	// processor is continuous with SMin 0.1; the zero workload is
	// worst-case).
	Processor wire.ProcessorSpec `json:"processor,omitempty"`
	Workload  wire.WorkloadSpec  `json:"workload,omitempty"`
	// Timeline lists runtime events in any order; execution sorts
	// where ordering matters.
	Timeline []Event `json:"timeline,omitempty"`
	// Assertions lists the checks the verdict enforces (at least
	// one is required).
	Assertions []Assertion `json:"assertions"`
}

// TaskSpec is one periodic task (rtm.Task wire form).
type TaskSpec struct {
	Name   string  `json:"name,omitempty"`
	WCET   float64 `json:"wcet"`
	Period float64 `json:"period"`
	// Deadline 0 means implicit (= period).
	Deadline float64 `json:"deadline,omitempty"`
	Jitter   float64 `json:"jitter,omitempty"`
}

// Event is one timeline entry; Event selects the kind and decides
// which other fields are read.
type Event struct {
	// Event: "surge", "override", "arrive", "depart", or "chaos".
	Event string `json:"event"`
	// At is the event time. For surge it opens the interval; for
	// arrive/depart it is the mode-change instant.
	At float64 `json:"at,omitempty"`
	// Until closes a surge interval (exclusive).
	Until float64 `json:"until,omitempty"`
	// Task names the affected task. Required for override, arrive,
	// and depart; optional for surge (empty = every task).
	Task string `json:"task,omitempty"`
	// Job is the per-task job index an override targets.
	Job int `json:"job,omitempty"`
	// Frac is the actual-cycle fraction of WCET in (0, 1]. A surge
	// raises each affected job's AET to at least Frac×WCET; an
	// override sets it to exactly Frac×WCET.
	Frac float64 `json:"frac,omitempty"`

	// Chaos fields (event: chaos). The run retries each policy
	// against the deterministic resilience fault plan until an
	// attempt survives or MaxAttempts is exhausted.
	Seed        uint64  `json:"seed,omitempty"`
	PDelay      float64 `json:"p_delay,omitempty"`
	PError      float64 `json:"p_error,omitempty"`
	PDrop       float64 `json:"p_drop,omitempty"`
	PTruncate   float64 `json:"p_truncate,omitempty"`
	MaxAttempts int     `json:"max_attempts,omitempty"`

	line int
}

// Assertion is one declarative check; Kind decides which other
// fields are read.
type Assertion struct {
	// Kind: "no_deadline_misses", "max_deadline_misses",
	// "audit_clean", "energy_max", "energy_ratio_max",
	// "min_jobs_completed", "all_jobs_completed", "fingerprint", or
	// "chaos_recovered".
	Kind string `json:"kind"`
	// Policy scopes the check to one policy (empty = every policy).
	// Required for energy_max and energy_ratio_max.
	Policy string `json:"policy,omitempty"`
	// Reference is the denominator policy of energy_ratio_max.
	Reference string `json:"reference,omitempty"`
	// Max bounds energy (energy_max) or the energy ratio
	// (energy_ratio_max).
	Max float64 `json:"max,omitempty"`
	// Count bounds misses (max_deadline_misses) or floors
	// completions (min_jobs_completed).
	Count int `json:"count,omitempty"`
	// Expect is the exact failure fingerprint (fingerprint kind):
	// sorted "policy/invariant" pairs as produced by the fuzz
	// harness.
	Expect []string `json:"expect,omitempty"`

	line int
}

// Error is one validation problem, anchored to its source line when
// the document came from YAML (JSON input has no line tracking, so
// Line is 0 and the anchor is the file alone).
type Error struct {
	File string
	Line int
	Msg  string
}

func (e Error) Error() string {
	switch {
	case e.File == "" && e.Line == 0:
		return e.Msg
	case e.Line == 0:
		return e.File + ": " + e.Msg
	default:
		return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
	}
}

// Parse decodes and validates a scenario document, returning every
// problem found rather than stopping at the first. The document is
// nil when errs is non-empty. Input starting with '{' is read as
// JSON; anything else as the YAML subset.
func Parse(filename string, data []byte) (*Document, []Error) {
	var (
		root *node
		err  error
	)
	if isJSONDoc(data) {
		root, err = parseJSON(data)
	} else {
		root, err = parseYAML(data)
	}
	if err != nil {
		return nil, []Error{{File: filename, Msg: err.Error()}}
	}
	d := &decoder{file: filename}
	doc := d.document(root)
	if len(d.errs) == 0 {
		d.validate(doc)
	}
	if len(d.errs) > 0 {
		return nil, d.errs
	}
	return doc, nil
}

func isJSONDoc(data []byte) bool {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		default:
			return b == '{'
		}
	}
	return false
}

// --- decoder ---

// decoder walks the node tree into a Document, accumulating every
// error instead of stopping. Field dispatch is by explicit key tables
// so unknown keys are reported with their line.
type decoder struct {
	file string
	errs []Error
}

func (d *decoder) errorf(line int, format string, args ...any) {
	d.errs = append(d.errs, Error{File: d.file, Line: line, Msg: fmt.Sprintf(format, args...)})
}

// mapping checks n is a mapping and reports unknown keys against the
// allowed set. It returns nil when n is not a mapping.
func (d *decoder) mapping(n *node, what string, allowed ...string) *node {
	if !n.isMap() {
		d.errorf(n.line, "%s must be a mapping", what)
		return nil
	}
	for _, k := range n.keys {
		found := false
		for _, a := range allowed {
			if k == a {
				found = true
				break
			}
		}
		if !found {
			d.errorf(n.fields[k].line, "%s: unknown field %q (known: %s)", what, k, strings.Join(allowed, ", "))
		}
	}
	return n
}

func (d *decoder) str(n *node, what string) string {
	if !n.isScalar() {
		d.errorf(n.line, "%s must be a string", what)
		return ""
	}
	return n.scalar.text
}

func (d *decoder) f64(n *node, what string) float64 {
	if !n.isScalar() || n.scalar.quoted {
		d.errorf(n.line, "%s must be a number", what)
		return 0
	}
	v, err := strconv.ParseFloat(n.scalar.text, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		d.errorf(n.line, "%s: %q is not a finite number", what, n.scalar.text)
		return 0
	}
	return v
}

func (d *decoder) u64(n *node, what string) uint64 {
	if !n.isScalar() || n.scalar.quoted {
		d.errorf(n.line, "%s must be an unsigned integer", what)
		return 0
	}
	v, err := strconv.ParseUint(n.scalar.text, 10, 64)
	if err != nil {
		d.errorf(n.line, "%s: %q is not an unsigned integer", what, n.scalar.text)
		return 0
	}
	return v
}

func (d *decoder) integer(n *node, what string) int {
	if !n.isScalar() || n.scalar.quoted {
		d.errorf(n.line, "%s must be an integer", what)
		return 0
	}
	v, err := strconv.Atoi(n.scalar.text)
	if err != nil {
		d.errorf(n.line, "%s: %q is not an integer", what, n.scalar.text)
		return 0
	}
	return v
}

func (d *decoder) boolean(n *node, what string) bool {
	if n.isScalar() && !n.scalar.quoted {
		switch n.scalar.text {
		case "true":
			return true
		case "false":
			return false
		}
	}
	d.errorf(n.line, "%s must be true or false", what)
	return false
}

func (d *decoder) strs(n *node, what string) []string {
	if !n.isSeq() {
		d.errorf(n.line, "%s must be a list", what)
		return nil
	}
	out := make([]string, 0, len(n.seq))
	for _, item := range n.seq {
		out = append(out, d.str(item, what+" entry"))
	}
	return out
}

func (d *decoder) f64s(n *node, what string) []float64 {
	if !n.isSeq() {
		d.errorf(n.line, "%s must be a list of numbers", what)
		return nil
	}
	out := make([]float64, 0, len(n.seq))
	for _, item := range n.seq {
		out = append(out, d.f64(item, what+" entry"))
	}
	return out
}

func (d *decoder) document(root *node) *Document {
	doc := &Document{}
	m := d.mapping(root, "document",
		"version", "name", "description", "horizon", "jitter_seed",
		"policies", "tasks", "processor", "workload", "timeline", "assertions")
	if m == nil {
		return doc
	}
	seen := func(k string) (*node, bool) { n, ok := m.fields[k]; return n, ok }
	if n, ok := seen("version"); ok {
		doc.Version = d.integer(n, "version")
	} else {
		d.errorf(root.line, "missing required field \"version\"")
	}
	if n, ok := seen("name"); ok {
		doc.Name = d.str(n, "name")
	} else {
		d.errorf(root.line, "missing required field \"name\"")
	}
	if n, ok := seen("description"); ok {
		doc.Description = d.str(n, "description")
	}
	if n, ok := seen("horizon"); ok {
		doc.Horizon = d.f64(n, "horizon")
	}
	if n, ok := seen("jitter_seed"); ok {
		doc.JitterSeed = d.u64(n, "jitter_seed")
	}
	if n, ok := seen("policies"); ok {
		doc.Policies = d.strs(n, "policies")
	} else {
		d.errorf(root.line, "missing required field \"policies\"")
	}
	if n, ok := seen("tasks"); ok {
		doc.Tasks = d.tasks(n)
	} else {
		d.errorf(root.line, "missing required field \"tasks\"")
	}
	if n, ok := seen("processor"); ok {
		doc.Processor = d.processor(n)
	}
	if n, ok := seen("workload"); ok {
		doc.Workload = d.workload(n)
	}
	if n, ok := seen("timeline"); ok {
		doc.Timeline = d.timeline(n)
	}
	if n, ok := seen("assertions"); ok {
		doc.Assertions = d.assertions(n)
	} else {
		d.errorf(root.line, "missing required field \"assertions\"")
	}
	return doc
}

func (d *decoder) tasks(n *node) []TaskSpec {
	if !n.isSeq() {
		d.errorf(n.line, "tasks must be a list")
		return nil
	}
	out := make([]TaskSpec, 0, len(n.seq))
	for i, item := range n.seq {
		what := fmt.Sprintf("tasks[%d]", i)
		m := d.mapping(item, what, "name", "wcet", "period", "deadline", "jitter")
		if m == nil {
			continue
		}
		var t TaskSpec
		if f, ok := m.fields["name"]; ok {
			t.Name = d.str(f, what+".name")
		}
		if f, ok := m.fields["wcet"]; ok {
			t.WCET = d.f64(f, what+".wcet")
		} else {
			d.errorf(item.line, "%s: missing required field \"wcet\"", what)
		}
		if f, ok := m.fields["period"]; ok {
			t.Period = d.f64(f, what+".period")
		} else {
			d.errorf(item.line, "%s: missing required field \"period\"", what)
		}
		if f, ok := m.fields["deadline"]; ok {
			t.Deadline = d.f64(f, what+".deadline")
		}
		if f, ok := m.fields["jitter"]; ok {
			t.Jitter = d.f64(f, what+".jitter")
		}
		out = append(out, t)
	}
	return out
}

func (d *decoder) processor(n *node) wire.ProcessorSpec {
	var p wire.ProcessorSpec
	m := d.mapping(n, "processor",
		"preset", "smin", "levels", "model", "alpha_vt", "alpha_idx",
		"table", "table_name", "idle_power", "switch_time",
		"switch_energy_coeff", "leakage_power", "sleep_enabled",
		"sleep_power", "wake_energy")
	if m == nil {
		return p
	}
	for _, k := range m.keys {
		f := m.fields[k]
		what := "processor." + k
		switch k {
		case "preset":
			p.Preset = d.str(f, what)
		case "smin":
			p.SMin = d.f64(f, what)
		case "levels":
			p.Levels = d.f64s(f, what)
		case "model":
			p.Model = d.str(f, what)
		case "alpha_vt":
			p.AlphaVt = d.f64(f, what)
		case "alpha_idx":
			p.AlphaIdx = d.f64(f, what)
		case "table":
			p.Table = d.table(f)
		case "table_name":
			p.TableName = d.str(f, what)
		case "idle_power":
			v := d.f64(f, what)
			p.IdlePower = &v
		case "switch_time":
			p.SwitchTime = d.f64(f, what)
		case "switch_energy_coeff":
			p.SwitchEnergyCoeff = d.f64(f, what)
		case "leakage_power":
			p.LeakagePower = d.f64(f, what)
		case "sleep_enabled":
			p.SleepEnabled = d.boolean(f, what)
		case "sleep_power":
			p.SleepPower = d.f64(f, what)
		case "wake_energy":
			p.WakeEnergy = d.f64(f, what)
		}
	}
	return p
}

func (d *decoder) table(n *node) []cpu.Level {
	if !n.isSeq() {
		d.errorf(n.line, "processor.table must be a list of {speed, voltage} levels")
		return nil
	}
	out := make([]cpu.Level, 0, len(n.seq))
	for i, item := range n.seq {
		what := fmt.Sprintf("processor.table[%d]", i)
		m := d.mapping(item, what, "speed", "voltage")
		if m == nil {
			continue
		}
		var lv cpu.Level
		if f, ok := m.fields["speed"]; ok {
			lv.Speed = d.f64(f, what+".speed")
		} else {
			d.errorf(item.line, "%s: missing required field \"speed\"", what)
		}
		if f, ok := m.fields["voltage"]; ok {
			lv.Voltage = d.f64(f, what+".voltage")
		} else {
			d.errorf(item.line, "%s: missing required field \"voltage\"", what)
		}
		out = append(out, lv)
	}
	return out
}

func (d *decoder) workload(n *node) wire.WorkloadSpec {
	var w wire.WorkloadSpec
	m := d.mapping(n, "workload",
		"kind", "lo", "hi", "frac", "mean", "std_dev", "light_frac",
		"heavy_frac", "p_heavy", "amp", "period_jobs", "jitter", "seed")
	if m == nil {
		return w
	}
	for _, k := range m.keys {
		f := m.fields[k]
		what := "workload." + k
		switch k {
		case "kind":
			w.Kind = d.str(f, what)
		case "lo":
			w.Lo = d.f64(f, what)
		case "hi":
			w.Hi = d.f64(f, what)
		case "frac":
			w.Frac = d.f64(f, what)
		case "mean":
			w.Mean = d.f64(f, what)
		case "std_dev":
			w.StdDev = d.f64(f, what)
		case "light_frac":
			w.LightFrac = d.f64(f, what)
		case "heavy_frac":
			w.HeavyFrac = d.f64(f, what)
		case "p_heavy":
			w.PHeavy = d.f64(f, what)
		case "amp":
			w.Amp = d.f64(f, what)
		case "period_jobs":
			w.PeriodJobs = d.f64(f, what)
		case "jitter":
			w.Jitter = d.f64(f, what)
		case "seed":
			w.Seed = d.u64(f, what)
		}
	}
	return w
}

func (d *decoder) timeline(n *node) []Event {
	if !n.isSeq() {
		d.errorf(n.line, "timeline must be a list of events")
		return nil
	}
	out := make([]Event, 0, len(n.seq))
	for i, item := range n.seq {
		what := fmt.Sprintf("timeline[%d]", i)
		m := d.mapping(item, what,
			"event", "at", "until", "task", "job", "frac",
			"seed", "p_delay", "p_error", "p_drop", "p_truncate", "max_attempts")
		if m == nil {
			continue
		}
		ev := Event{line: item.line}
		for _, k := range m.keys {
			f := m.fields[k]
			w := what + "." + k
			switch k {
			case "event":
				ev.Event = d.str(f, w)
			case "at":
				ev.At = d.f64(f, w)
			case "until":
				ev.Until = d.f64(f, w)
			case "task":
				ev.Task = d.str(f, w)
			case "job":
				ev.Job = d.integer(f, w)
			case "frac":
				ev.Frac = d.f64(f, w)
			case "seed":
				ev.Seed = d.u64(f, w)
			case "p_delay":
				ev.PDelay = d.f64(f, w)
			case "p_error":
				ev.PError = d.f64(f, w)
			case "p_drop":
				ev.PDrop = d.f64(f, w)
			case "p_truncate":
				ev.PTruncate = d.f64(f, w)
			case "max_attempts":
				ev.MaxAttempts = d.integer(f, w)
			}
		}
		if _, ok := m.fields["event"]; !ok {
			d.errorf(item.line, "%s: missing required field \"event\"", what)
		}
		out = append(out, ev)
	}
	return out
}

func (d *decoder) assertions(n *node) []Assertion {
	if !n.isSeq() {
		d.errorf(n.line, "assertions must be a list")
		return nil
	}
	out := make([]Assertion, 0, len(n.seq))
	for i, item := range n.seq {
		what := fmt.Sprintf("assertions[%d]", i)
		m := d.mapping(item, what, "kind", "policy", "reference", "max", "count", "expect")
		if m == nil {
			continue
		}
		a := Assertion{line: item.line}
		for _, k := range m.keys {
			f := m.fields[k]
			w := what + "." + k
			switch k {
			case "kind":
				a.Kind = d.str(f, w)
			case "policy":
				a.Policy = d.str(f, w)
			case "reference":
				a.Reference = d.str(f, w)
			case "max":
				a.Max = d.f64(f, w)
			case "count":
				a.Count = d.integer(f, w)
			case "expect":
				a.Expect = d.strs(f, w)
			}
		}
		if _, ok := m.fields["kind"]; !ok {
			d.errorf(item.line, "%s: missing required field \"kind\"", what)
		}
		out = append(out, a)
	}
	return out
}

// --- validation ---

// validate performs the semantic pass over a structurally decoded
// document, again accumulating every problem.
func (d *decoder) validate(doc *Document) {
	if doc.Version != Version {
		d.errorf(0, "version must be %d, got %d", Version, doc.Version)
	}
	if doc.Name == "" {
		d.errorf(0, "name must be non-empty")
	} else if strings.ContainsAny(doc.Name, " \t/") {
		d.errorf(0, "name %q must not contain spaces or slashes", doc.Name)
	}
	if doc.Horizon < 0 {
		d.errorf(0, "horizon must be non-negative, got %v", doc.Horizon)
	}

	if len(doc.Tasks) == 0 {
		d.errorf(0, "at least one task is required")
	}
	ts := doc.taskSet()
	byName := map[string]int{}
	for i, t := range ts.Tasks {
		if err := t.Validate(); err != nil {
			d.errorf(0, "tasks[%d]: %v", i, err)
		}
		if prev, dup := byName[t.Name]; dup {
			d.errorf(0, "tasks[%d]: name %q already used by tasks[%d]", i, t.Name, prev)
		}
		byName[t.Name] = i
	}

	if len(doc.Policies) == 0 {
		d.errorf(0, "at least one policy is required")
	}
	inPolicies := map[string]bool{}
	for i, spec := range doc.Policies {
		if inPolicies[spec] {
			d.errorf(0, "policies[%d]: duplicate policy %q", i, spec)
		}
		inPolicies[spec] = true
		if _, err := policies.Lookup(spec); err != nil {
			d.errorf(0, "policies[%d]: %v", i, err)
		}
	}

	if _, err := doc.Processor.Build(); err != nil {
		d.errorf(0, "processor: %v", err)
	}
	if _, err := doc.Workload.Build(); err != nil {
		d.errorf(0, "workload: %v", err)
	}

	d.validateTimeline(doc, byName)
	d.validateAssertions(doc, inPolicies)
}

func (d *decoder) validateTimeline(doc *Document, byName map[string]int) {
	chaosSeen := false
	type move struct {
		at     float64
		arrive bool
		line   int
	}
	moves := map[string][]move{}
	for i, ev := range doc.Timeline {
		what := fmt.Sprintf("timeline[%d]", i)
		requireTask := func() {
			if ev.Task == "" {
				d.errorf(ev.line, "%s: %s requires a task", what, ev.Event)
			} else if _, ok := byName[ev.Task]; !ok {
				d.errorf(ev.line, "%s: unknown task %q", what, ev.Task)
			}
		}
		if ev.At < 0 {
			d.errorf(ev.line, "%s: at must be non-negative, got %v", what, ev.At)
		}
		switch ev.Event {
		case "surge":
			if ev.Until <= ev.At {
				d.errorf(ev.line, "%s: until (%v) must exceed at (%v)", what, ev.Until, ev.At)
			}
			if !(ev.Frac > 0 && ev.Frac <= 1) {
				d.errorf(ev.line, "%s: frac must be in (0, 1], got %v", what, ev.Frac)
			}
			if ev.Task != "" {
				if _, ok := byName[ev.Task]; !ok {
					d.errorf(ev.line, "%s: unknown task %q", what, ev.Task)
				}
			}
		case "override":
			requireTask()
			if ev.Job < 0 {
				d.errorf(ev.line, "%s: job must be non-negative, got %d", what, ev.Job)
			}
			if !(ev.Frac > 0 && ev.Frac <= 1) {
				d.errorf(ev.line, "%s: frac must be in (0, 1], got %v", what, ev.Frac)
			}
		case "arrive", "depart":
			requireTask()
			moves[ev.Task] = append(moves[ev.Task], move{at: ev.At, arrive: ev.Event == "arrive", line: ev.line})
		case "chaos":
			if chaosSeen {
				d.errorf(ev.line, "%s: at most one chaos event per scenario", what)
			}
			chaosSeen = true
			sum := 0.0
			for _, p := range []struct {
				name string
				v    float64
			}{{"p_delay", ev.PDelay}, {"p_error", ev.PError}, {"p_drop", ev.PDrop}, {"p_truncate", ev.PTruncate}} {
				if p.v < 0 || p.v > 1 {
					d.errorf(ev.line, "%s: %s must be in [0, 1], got %v", what, p.name, p.v)
				}
				sum += p.v
			}
			if sum > 1 {
				d.errorf(ev.line, "%s: fault probabilities sum to %v (> 1)", what, sum)
			}
			if ev.MaxAttempts < 0 {
				d.errorf(ev.line, "%s: max_attempts must be non-negative, got %d", what, ev.MaxAttempts)
			}
		case "":
			// missing `event` already reported by the decoder
		default:
			d.errorf(ev.line, "%s: unknown event %q (known: surge, override, arrive, depart, chaos)", what, ev.Event)
		}
	}
	// Arrivals and departures must alternate per task, in time order.
	for task, ms := range moves {
		for i := 1; i < len(ms); i++ {
			if ms[i].at <= ms[i-1].at {
				d.errorf(ms[i].line, "task %q: arrive/depart events must be in strictly increasing time order", task)
			}
			if ms[i].arrive == ms[i-1].arrive {
				kind := "depart"
				if ms[i].arrive {
					kind = "arrive"
				}
				d.errorf(ms[i].line, "task %q: consecutive %s events (arrivals and departures must alternate)", task, kind)
			}
		}
	}
}

func (d *decoder) validateAssertions(doc *Document, inPolicies map[string]bool) {
	if len(doc.Assertions) == 0 {
		d.errorf(0, "at least one assertion is required")
	}
	hasChaos := false
	for _, ev := range doc.Timeline {
		if ev.Event == "chaos" {
			hasChaos = true
		}
	}
	for i, a := range doc.Assertions {
		what := fmt.Sprintf("assertions[%d]", i)
		checkPolicy := func(name, field string, required bool) {
			if name == "" {
				if required {
					d.errorf(a.line, "%s: %s requires %q", what, a.Kind, field)
				}
				return
			}
			if !inPolicies[name] {
				d.errorf(a.line, "%s: %s %q is not in the policies list", what, field, name)
			}
		}
		switch a.Kind {
		case "no_deadline_misses", "audit_clean", "all_jobs_completed":
			checkPolicy(a.Policy, "policy", false)
		case "max_deadline_misses":
			checkPolicy(a.Policy, "policy", false)
			if a.Count < 0 {
				d.errorf(a.line, "%s: count must be non-negative, got %d", what, a.Count)
			}
		case "min_jobs_completed":
			checkPolicy(a.Policy, "policy", false)
			if a.Count < 1 {
				d.errorf(a.line, "%s: count must be at least 1, got %d", what, a.Count)
			}
		case "energy_max":
			checkPolicy(a.Policy, "policy", true)
			if !(a.Max > 0) {
				d.errorf(a.line, "%s: max must be positive, got %v", what, a.Max)
			}
		case "energy_ratio_max":
			checkPolicy(a.Policy, "policy", true)
			checkPolicy(a.Reference, "reference", true)
			if a.Policy != "" && a.Policy == a.Reference {
				d.errorf(a.line, "%s: policy and reference must differ", what)
			}
			if !(a.Max > 0) {
				d.errorf(a.line, "%s: max must be positive, got %v", what, a.Max)
			}
		case "fingerprint":
			for j, e := range a.Expect {
				if !strings.Contains(e, "/") {
					d.errorf(a.line, "%s: expect[%d] %q is not a policy/invariant pair", what, j, e)
				}
			}
		case "chaos_recovered":
			if !hasChaos {
				d.errorf(a.line, "%s: chaos_recovered requires a chaos event in the timeline", what)
			}
		case "":
			// missing `kind` already reported by the decoder
		default:
			d.errorf(a.line, "%s: unknown assertion kind %q", what, a.Kind)
		}
	}
}

// taskSet builds the rtm task set the document describes. Tasks
// without names get the rtm defaults (T1..Tn).
func (doc *Document) taskSet() *rtm.TaskSet {
	tasks := make([]rtm.Task, 0, len(doc.Tasks))
	for _, t := range doc.Tasks {
		tasks = append(tasks, rtm.Task{
			Name: t.Name, WCET: t.WCET, Period: t.Period,
			Deadline: t.Deadline, Jitter: t.Jitter,
		})
	}
	return rtm.NewTaskSet(doc.Name, tasks...)
}
