package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

const minimalDoc = `version: 1
name: minimal
policies: [lpshe, nondvs]
tasks:
  - name: A
    wcet: 1
    period: 5
  - name: B
    wcet: 2
    period: 10
workload:
  kind: constant
  frac: 0.6
assertions:
  - kind: no_deadline_misses
  - kind: audit_clean
`

func mustParse(t *testing.T, src string) *Document {
	t.Helper()
	doc, errs := Parse("test.yaml", []byte(src))
	if len(errs) > 0 {
		for _, e := range errs {
			t.Log(e)
		}
		t.Fatalf("Parse failed with %d errors", len(errs))
	}
	return doc
}

func mustExecute(t *testing.T, doc *Document) *Verdict {
	t.Helper()
	v, err := Execute(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestParseMinimal(t *testing.T) {
	doc := mustParse(t, minimalDoc)
	if doc.Name != "minimal" || len(doc.Tasks) != 2 || len(doc.Policies) != 2 {
		t.Fatalf("decoded %+v", doc)
	}
	if doc.Tasks[1].Name != "B" || doc.Tasks[1].Period != 10 {
		t.Fatalf("tasks = %+v", doc.Tasks)
	}
	if doc.Workload.Kind != "constant" || doc.Workload.Frac != 0.6 {
		t.Fatalf("workload = %+v", doc.Workload)
	}
}

func TestExecuteMinimal(t *testing.T) {
	v := mustExecute(t, mustParse(t, minimalDoc))
	if !v.Ok {
		t.Fatalf("verdict not ok: %s", v.JSON())
	}
	if len(v.Policies) != 2 || v.Policies[0].Policy != "lpshe" {
		t.Fatalf("policies = %+v", v.Policies)
	}
	// Implicit policies_ran plus the two declared assertions.
	if len(v.Assertions) != 3 || v.Assertions[0].Kind != "policies_ran" {
		t.Fatalf("assertions = %+v", v.Assertions)
	}
	if v.Policies[0].Energy >= v.Policies[1].Energy {
		t.Fatalf("lpshe energy %v not below nondvs %v", v.Policies[0].Energy, v.Policies[1].Energy)
	}
}

func TestVerdictByteStable(t *testing.T) {
	doc := mustParse(t, minimalDoc)
	a := mustExecute(t, doc).JSON()
	b := mustExecute(t, mustParse(t, minimalDoc)).JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("verdict bytes differ:\n%s\n---\n%s", a, b)
	}
	if !bytes.HasSuffix(a, []byte("}\n")) {
		t.Fatalf("verdict does not end in newline: %q", a[len(a)-4:])
	}
}

// TestValidateCollectsAllErrors pins the all-errors contract: one
// pass reports every problem, each anchored to its source line.
func TestValidateCollectsAllErrors(t *testing.T) {
	src := `version: 3
name: bad doc
policies: [lpshe, no-such-policy]
tasks:
  - name: A
    wcet: 5
    period: 2
processor:
  preset: no-such-preset
workload:
  kind: no-such-kind
timeline:
  - event: surge
    at: 10
    until: 5
    frac: 2
  - event: override
    task: Z
    frac: 0.5
  - event: teleport
assertions:
  - kind: energy_ratio_max
    policy: lpshe
    reference: lpshe
    max: 0
  - kind: no_such_kind
`
	_, errs := Parse("bad.yaml", []byte(src))
	wants := []string{
		"version must be 1",
		"must not contain spaces",
		"no-such-policy",
		"WCET 5 exceeds deadline",
		"unknown processor preset",
		"unknown workload kind",
		"until (5) must exceed at (10)",
		"frac must be in (0, 1], got 2",
		"unknown task \"Z\"",
		"unknown event \"teleport\"",
		"policy and reference must differ",
		"max must be positive",
		"unknown assertion kind",
	}
	joined := make([]string, len(errs))
	for i, e := range errs {
		joined[i] = e.Error()
	}
	all := strings.Join(joined, "\n")
	for _, want := range wants {
		if !strings.Contains(all, want) {
			t.Errorf("missing error %q in:\n%s", want, all)
		}
	}
	if len(errs) < len(wants) {
		t.Fatalf("got %d errors, want at least %d:\n%s", len(errs), len(wants), all)
	}
	// Line anchoring: the surge event starts on line 13.
	found := false
	for _, e := range errs {
		if strings.HasPrefix(e.Error(), "bad.yaml:13:") {
			found = true
		}
	}
	if !found {
		t.Errorf("no error anchored to bad.yaml:13:\n%s", all)
	}
}

func TestParseUnknownField(t *testing.T) {
	src := strings.Replace(minimalDoc, "name: minimal", "name: minimal\nbogus: 1", 1)
	_, errs := Parse("t.yaml", []byte(src))
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "unknown field \"bogus\"") {
		t.Fatalf("errs = %v", errs)
	}
	if errs[0].Line != 3 {
		t.Fatalf("unknown field anchored to line %d, want 3", errs[0].Line)
	}
}

func TestParseJSONDocument(t *testing.T) {
	doc := mustParse(t, minimalDoc)
	// The canonical JSON form must reparse to the same document.
	jsonForm := docJSON(t, doc)
	doc2, errs := Parse("t.json", jsonForm)
	if len(errs) > 0 {
		t.Fatalf("JSON reparse failed: %v", errs)
	}
	if DocKey(doc) != DocKey(doc2) {
		t.Fatal("YAML and JSON forms hash to different DocKeys")
	}
}

func TestMarshalYAMLRoundTrip(t *testing.T) {
	src := `version: 1
name: round-trip
horizon: 120
jitter_seed: 7
policies: [lpshe, ccedf, nondvs]
tasks:
  - name: A
    wcet: 1
    period: 5
    deadline: 4
    jitter: 0.2
  - name: B
    wcet: 2
    period: 10
processor:
  levels: [0.25, 0.5, 0.75, 1]
  switch_time: 0.01
workload:
  kind: uniform
  lo: 0.2
  hi: 0.8
  seed: 9
timeline:
  - event: surge
    at: 40
    until: 80
    task: A
    frac: 1
  - event: override
    task: B
    job: 3
    frac: 0.95
  - event: arrive
    at: 20
    task: B
  - event: chaos
    seed: 11
    p_error: 0.3
    max_attempts: 6
assertions:
  - kind: no_deadline_misses
    policy: lpshe
  - kind: fingerprint
    expect: [nondvs/deadline-miss]
  - kind: chaos_recovered
`
	doc := mustParse(t, src)
	out := MarshalYAML(doc)
	doc2, errs := Parse("rt.yaml", out)
	if len(errs) > 0 {
		t.Fatalf("marshalled YAML does not reparse: %v\n%s", errs, out)
	}
	if DocKey(doc) != DocKey(doc2) {
		t.Fatalf("round trip changed the document:\n%s\nvs\n%s", docJSON(t, doc), docJSON(t, doc2))
	}
}

func TestSurgeRaisesEnergy(t *testing.T) {
	base := mustParse(t, minimalDoc)
	surged := mustParse(t, strings.Replace(minimalDoc, "assertions:", `timeline:
  - event: surge
    at: 0
    until: 1000
    frac: 1
assertions:`, 1))
	vb := mustExecute(t, base)
	vs := mustExecute(t, surged)
	if !vs.Ok {
		t.Fatalf("surged verdict not ok: %s", vs.JSON())
	}
	// The surge forces every job to full WCET, strictly above the
	// constant-0.6 base workload.
	if vs.Policies[0].Energy <= vb.Policies[0].Energy {
		t.Fatalf("surge did not raise lpshe energy: %v <= %v", vs.Policies[0].Energy, vb.Policies[0].Energy)
	}
}

func TestOverrideTargetsOneJob(t *testing.T) {
	with := mustParse(t, strings.Replace(minimalDoc, "assertions:", `timeline:
  - event: override
    task: A
    job: 0
    frac: 1
assertions:`, 1))
	v := mustExecute(t, with)
	base := mustExecute(t, mustParse(t, minimalDoc))
	if !v.Ok {
		t.Fatalf("override verdict not ok: %s", v.JSON())
	}
	if v.Policies[0].Energy <= base.Policies[0].Energy {
		t.Fatalf("override did not raise energy: %v <= %v", v.Policies[0].Energy, base.Policies[0].Energy)
	}
	if v.Policies[0].JobsReleased != base.Policies[0].JobsReleased {
		t.Fatal("override changed the job population")
	}
}

func TestArriveDepartChangesJobCount(t *testing.T) {
	src := strings.Replace(minimalDoc, "assertions:", `horizon: 100
timeline:
  - event: depart
    at: 50
    task: B
assertions:`, 1)
	v := mustExecute(t, mustParse(t, src))
	if !v.Ok {
		t.Fatalf("verdict not ok: %s", v.JSON())
	}
	// A releases 20 jobs over 100; B only 5 (nominals 0..40).
	if got := v.Policies[0].JobsReleased; got != 25 {
		t.Fatalf("jobs released = %d, want 25", got)
	}
}

func TestChaosDeterministic(t *testing.T) {
	// Seed 4 injects faults against both policies yet recovers
	// within the attempt budget (pinned by the probe below).
	src := strings.Replace(minimalDoc, "assertions:", `timeline:
  - event: chaos
    seed: 4
    p_error: 0.4
    p_drop: 0.2
    max_attempts: 8
assertions:
  - kind: chaos_recovered
`, 1)
	a := mustExecute(t, mustParse(t, src))
	b := mustExecute(t, mustParse(t, src))
	if !bytes.Equal(a.JSON(), b.JSON()) {
		t.Fatalf("chaos runs diverge:\n%s\n---\n%s", a.JSON(), b.JSON())
	}
	if !a.Ok {
		t.Fatalf("chaos verdict not ok: %s", a.JSON())
	}
	if a.Chaos == nil || a.Chaos.Seed != 4 || a.Chaos.MaxAttempts != 8 {
		t.Fatalf("chaos verdict = %+v", a.Chaos)
	}
	total := 0
	for _, n := range a.Chaos.Faults {
		total += n
	}
	if total == 0 {
		t.Fatal("seed 4 should inject at least one fault")
	}
	for _, p := range a.Policies {
		if p.Attempts < 1 || p.Err != "" {
			t.Fatalf("policy %s did not recover: %+v", p.Policy, p)
		}
	}
}

func TestFingerprintAssertion(t *testing.T) {
	// An overloaded set under nondvs misses deadlines; the
	// fingerprint assertion pins exactly that failure.
	src := `version: 1
name: overload
policies: [nondvs]
tasks:
  - name: A
    wcet: 4
    period: 5
  - name: B
    wcet: 4
    period: 5
assertions:
  - kind: fingerprint
    expect: [nondvs/deadline-miss]
`
	v := mustExecute(t, mustParse(t, src))
	if !v.Ok {
		t.Fatalf("fingerprint verdict not ok: %s", v.JSON())
	}
	// With a fingerprint assertion the implicit policies_ran check
	// is suppressed.
	for _, a := range v.Assertions {
		if a.Kind == "policies_ran" {
			t.Fatal("policies_ran present despite fingerprint assertion")
		}
	}
}

func TestEnergyRatioAssertion(t *testing.T) {
	src := strings.Replace(minimalDoc, "  - kind: audit_clean",
		`  - kind: audit_clean
  - kind: energy_ratio_max
    policy: lpshe
    reference: nondvs
    max: 0.99
  - kind: all_jobs_completed
  - kind: min_jobs_completed
    count: 2`, 1)
	v := mustExecute(t, mustParse(t, src))
	if !v.Ok {
		t.Fatalf("verdict not ok: %s", v.JSON())
	}
	// And a ratio bound that must fail.
	tight := strings.Replace(src, "max: 0.99", "max: 0.0001", 1)
	v2 := mustExecute(t, mustParse(t, tight))
	if v2.Ok {
		t.Fatalf("impossible ratio bound passed: %s", v2.JSON())
	}
}

func TestParserErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab", "\tname: x", "tab character"},
		{"empty", "\n\n# just a comment\n", "empty document"},
		{"bad key", "version: 1\n[weird]: 2\n", "invalid mapping key"},
		{"seq in map", "version: 1\n- 2\n", "sequence item in a mapping block"},
		{"flow map", "version: 1\nprocessor: {smin: 0.1}\n", "flow mappings are not supported"},
		{"unterminated", "policies: [a, b\n", "unterminated flow sequence"},
		{"dup key", "version: 1\nversion: 2\n", "duplicate key"},
	}
	for _, tc := range cases {
		_, errs := Parse("p.yaml", []byte(tc.src))
		if len(errs) == 0 || !strings.Contains(errs[0].Error(), tc.want) {
			t.Errorf("%s: errs = %v, want %q", tc.name, errs, tc.want)
		}
	}
}

func TestQuotedScalarsAndComments(t *testing.T) {
	src := strings.Replace(minimalDoc, "name: minimal",
		"name: \"minimal\"  # inline comment\ndescription: 'has: colon #not-a-comment'", 1)
	doc := mustParse(t, src)
	if doc.Name != "minimal" {
		t.Fatalf("name = %q", doc.Name)
	}
	if doc.Description != "has: colon #not-a-comment" {
		t.Fatalf("description = %q", doc.Description)
	}
}

func docJSON(t *testing.T, doc *Document) []byte {
	t.Helper()
	return DocJSON(doc)
}
