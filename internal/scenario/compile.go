package scenario

import (
	"math"
	"sort"

	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// farFuture closes the last open activity window. It is finite (the
// engine requires finite window ends) but beyond any horizon.
const farFuture = 1e18

// activeWindows compiles the timeline's arrive/depart events into
// per-task sim activity windows. It returns nil when the timeline has
// none, so scenarios without mode changes run through the engine
// exactly as an unwindowed config.
func (doc *Document) activeWindows(ts *rtm.TaskSet) [][]sim.Window {
	type move struct {
		at     float64
		arrive bool
	}
	moves := map[string][]move{}
	for _, ev := range doc.Timeline {
		switch ev.Event {
		case "arrive", "depart":
			moves[ev.Task] = append(moves[ev.Task], move{at: ev.At, arrive: ev.Event == "arrive"})
		}
	}
	if len(moves) == 0 {
		return nil
	}
	ws := make([][]sim.Window, len(ts.Tasks))
	for i, t := range ts.Tasks {
		ms, ok := moves[t.Name]
		if !ok {
			continue // always active
		}
		sort.SliceStable(ms, func(a, b int) bool { return ms[a].at < ms[b].at })
		// The task starts active unless its first event is an
		// arrival (validation guarantees alternation after that).
		var out []sim.Window
		start, active := 0.0, !ms[0].arrive
		for _, m := range ms {
			if m.arrive && !active {
				start, active = m.at, true
			} else if !m.arrive && active {
				if m.at > start {
					out = append(out, sim.Window{Start: start, End: m.at})
				}
				active = false
			}
		}
		if active {
			out = append(out, sim.Window{Start: start, End: farFuture})
		}
		if len(out) == 0 {
			// Departed at 0 and never returned: a single empty-by-
			// construction window far in the past keeps the task
			// permanently inactive (the engine rejects truly empty
			// windows, and an empty list would mean always-active).
			out = []sim.Window{{Start: farFuture / 2, End: farFuture}}
		}
		ws[i] = out
	}
	return ws
}

// shapedWorkload layers the timeline's surge and override events on a
// base AET generator. Per-job overrides win over surges; surges raise
// a job's AET to at least frac×WCET when its nominal release falls in
// [at, until). Everything stays a pure function of (task, index), so
// shaped runs are as deterministic as the base generator.
type shapedWorkload struct {
	base      workload.Generator
	tasks     []rtm.Task
	nameIdx   map[string]int
	overrides map[[2]int]float64 // (task, job) -> exact frac
	surges    []surge
}

type surge struct {
	task  int // -1 = every task
	at    float64
	until float64
	frac  float64
}

// newShapedWorkload returns nil when the timeline carries no workload
// events, so the caller can skip the wrapper entirely and keep
// bit-identical replay of unshaped documents (e.g. fuzz conversions).
func newShapedWorkload(doc *Document, base workload.Generator, ts *rtm.TaskSet) *shapedWorkload {
	sw := &shapedWorkload{
		base:      base,
		tasks:     ts.Tasks,
		nameIdx:   map[string]int{},
		overrides: map[[2]int]float64{},
	}
	for i, t := range ts.Tasks {
		sw.nameIdx[t.Name] = i
	}
	for _, ev := range doc.Timeline {
		switch ev.Event {
		case "override":
			sw.overrides[[2]int{sw.nameIdx[ev.Task], ev.Job}] = ev.Frac
		case "surge":
			task := -1
			if ev.Task != "" {
				task = sw.nameIdx[ev.Task]
			}
			sw.surges = append(sw.surges, surge{task: task, at: ev.At, until: ev.Until, frac: ev.Frac})
		}
	}
	if len(sw.overrides) == 0 && len(sw.surges) == 0 {
		return nil
	}
	return sw
}

func (sw *shapedWorkload) Name() string { return "shaped(" + sw.base.Name() + ")" }

func (sw *shapedWorkload) AET(task, index int, wcet float64) float64 {
	if frac, ok := sw.overrides[[2]int{task, index}]; ok {
		return frac * wcet
	}
	aet := sw.base.AET(task, index, wcet)
	nominal := float64(index) * sw.tasks[task].Period
	for _, s := range sw.surges {
		if s.task != -1 && s.task != task {
			continue
		}
		if nominal >= s.at && nominal < s.until {
			aet = math.Max(aet, s.frac*wcet)
		}
	}
	return aet
}

// chaosSpec returns the timeline's chaos event, if any.
func (doc *Document) chaosSpec() *Event {
	for i := range doc.Timeline {
		if doc.Timeline[i].Event == "chaos" {
			return &doc.Timeline[i]
		}
	}
	return nil
}
