package scenario

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestShippedCorpus replays every document in the committed
// scenarios/ corpus: each must validate cleanly and execute to an
// ok verdict with its assertions enforced. This is the same check
// verify.sh runs via dvsscen, kept in-tree so `go test ./...`
// catches a broken corpus immediately.
func TestShippedCorpus(t *testing.T) {
	docs, err := filepath.Glob("../../scenarios/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) < 10 {
		t.Fatalf("shipped corpus has %d documents, want >= 10", len(docs))
	}
	for _, path := range docs {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			doc, errs := Parse(path, data)
			if len(errs) > 0 {
				t.Fatalf("validation: %v", errs)
			}
			v, err := Execute(context.Background(), doc)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Ok {
				for _, a := range v.Assertions {
					if !a.Ok {
						t.Errorf("assertion %s failed: %s", a.Kind, a.Detail)
					}
				}
				t.Fatal("corpus document does not pass its own assertions")
			}
			// The verdict must be byte-stable: replaying the same
			// document yields identical canonical bytes.
			v2, err := Execute(context.Background(), doc)
			if err != nil {
				t.Fatal(err)
			}
			if string(v.JSON()) != string(v2.JSON()) {
				t.Fatal("replay produced different verdict bytes")
			}
		})
	}
}
