package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The scenario file format is a YAML subset chosen so documents stay
// hand-writable without pulling a YAML dependency into the module
// (the repo is stdlib-only): block mappings, block sequences, compact
// `- key: value` sequence items, flow sequences of scalars
// (`[a, b, c]`), plain / single- / double-quoted scalars, and `#`
// comments. Anchors, aliases, multi-line scalars, flow mappings, and
// multi-document streams are out — the validator's job is precise
// line-anchored errors, not full YAML.
//
// Every parsed node carries its 1-based source line so decode and
// validation errors point at the offending line.

// node is one parsed value.
type node struct {
	line int

	// exactly one of the following is populated
	scalar *scalarNode
	seq    []*node
	keys   []string         // mapping keys, in source order
	fields map[string]*node // mapping values
}

type scalarNode struct {
	text   string
	quoted bool // quoted scalars never reparse as numbers/bools/null
}

func (n *node) isMap() bool    { return n.fields != nil }
func (n *node) isSeq() bool    { return n.seq != nil }
func (n *node) isScalar() bool { return n.scalar != nil }

// parseYAML parses src into a node tree.
func parseYAML(src []byte) (*node, error) {
	lines := strings.Split(string(src), "\n")
	p := &parser{lines: make([]line, 0, len(lines))}
	for i, raw := range lines {
		l, err := newLine(i+1, raw)
		if err != nil {
			return nil, err
		}
		if l.content == "" {
			continue // blank or comment-only
		}
		p.lines = append(p.lines, l)
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("line 1: empty document")
	}
	root, next, err := p.parseBlock(0, p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(p.lines) {
		return nil, fmt.Errorf("line %d: content outside the document root (check indentation)", p.lines[next].n)
	}
	return root, nil
}

// line is one non-blank source line with its comment stripped.
type line struct {
	n       int // 1-based source line number
	indent  int
	content string // trimmed of indentation and trailing comment/space
}

func newLine(n int, raw string) (line, error) {
	if i := strings.IndexByte(raw, '\t'); i >= 0 {
		return line{}, fmt.Errorf("line %d: tab character (indent with spaces)", n)
	}
	indent := 0
	for indent < len(raw) && raw[indent] == ' ' {
		indent++
	}
	content := stripComment(raw[indent:])
	content = strings.TrimRight(content, " ")
	if content == "" {
		return line{n: n}, nil
	}
	return line{n: n, indent: indent, content: content}, nil
}

// stripComment removes a trailing ` # ...` comment, honoring quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\'' && !inD:
			inS = !inS
		case s[i] == '"' && !inS:
			if inD && i > 0 && s[i-1] == '\\' {
				continue
			}
			inD = !inD
		case s[i] == '#' && !inS && !inD && (i == 0 || s[i-1] == ' '):
			return strings.TrimRight(s[:i], " ")
		}
	}
	return s
}

type parser struct {
	lines []line
}

// parseBlock parses the block value starting at lines[i], whose items
// sit at exactly `indent`. It returns the node and the index of the
// first line it did not consume.
func (p *parser) parseBlock(i, indent int) (*node, int, error) {
	l := p.lines[i]
	if strings.HasPrefix(l.content, "- ") || l.content == "-" {
		return p.parseSeq(i, indent)
	}
	return p.parseMap(i, indent)
}

func (p *parser) parseMap(i, indent int) (*node, int, error) {
	n := &node{line: p.lines[i].n, fields: map[string]*node{}}
	for i < len(p.lines) {
		l := p.lines[i]
		if l.indent != indent {
			if l.indent > indent {
				return nil, 0, fmt.Errorf("line %d: unexpected indentation", l.n)
			}
			break
		}
		if strings.HasPrefix(l.content, "- ") || l.content == "-" {
			return nil, 0, fmt.Errorf("line %d: sequence item in a mapping block", l.n)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, 0, err
		}
		if _, dup := n.fields[key]; dup {
			return nil, 0, fmt.Errorf("line %d: duplicate key %q", l.n, key)
		}
		var val *node
		if rest != "" {
			val, err = parseFlow(rest, l.n)
			if err != nil {
				return nil, 0, err
			}
			i++
		} else if i+1 < len(p.lines) && p.lines[i+1].indent > indent {
			val, i, err = p.parseBlock(i+1, p.lines[i+1].indent)
			if err != nil {
				return nil, 0, err
			}
		} else {
			// `key:` with nothing nested — an explicit empty value.
			val = &node{line: l.n, scalar: &scalarNode{text: ""}}
			i++
		}
		n.keys = append(n.keys, key)
		n.fields[key] = val
	}
	return n, i, nil
}

func (p *parser) parseSeq(i, indent int) (*node, int, error) {
	n := &node{line: p.lines[i].n, seq: []*node{}}
	for i < len(p.lines) {
		l := p.lines[i]
		if l.indent != indent {
			if l.indent > indent {
				return nil, 0, fmt.Errorf("line %d: unexpected indentation", l.n)
			}
			break
		}
		if !strings.HasPrefix(l.content, "- ") && l.content != "-" {
			return nil, 0, fmt.Errorf("line %d: mapping key in a sequence block", l.n)
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.content, "-"), " ")
		var item *node
		var err error
		switch {
		case rest == "":
			// `-` alone: the item is the nested block.
			if i+1 >= len(p.lines) || p.lines[i+1].indent <= indent {
				return nil, 0, fmt.Errorf("line %d: empty sequence item", l.n)
			}
			item, i, err = p.parseBlock(i+1, p.lines[i+1].indent)
		case isCompactMapping(rest):
			// `- key: value`: rewrite the dash to spaces and reparse
			// this line (and the indented siblings that follow) as a
			// mapping two columns deeper. Line numbers are preserved
			// because the line records are reused.
			idx := i
			saved := p.lines[idx]
			p.lines[idx] = line{n: l.n, indent: indent + 2, content: rest}
			item, i, err = p.parseMap(idx, indent+2)
			p.lines[idx] = saved
		default:
			item, err = parseFlow(rest, l.n)
			i++
		}
		if err != nil {
			return nil, 0, err
		}
		n.seq = append(n.seq, item)
	}
	return n, i, nil
}

// isCompactMapping reports whether a sequence-item body is a `key:
// value` mapping entry rather than a plain scalar.
func isCompactMapping(s string) bool {
	if strings.HasPrefix(s, "'") || strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "[") {
		return false
	}
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return false
	}
	return i == len(s)-1 || s[i+1] == ' '
}

// splitKey splits a `key: value` mapping line.
func splitKey(l line) (key, rest string, err error) {
	s := l.content
	i := strings.IndexByte(s, ':')
	if i <= 0 || (i != len(s)-1 && s[i+1] != ' ') {
		return "", "", fmt.Errorf("line %d: expected `key: value`, got %q", l.n, s)
	}
	key = strings.TrimSpace(s[:i])
	if key == "" || strings.ContainsAny(key, "'\"[]{}") {
		return "", "", fmt.Errorf("line %d: invalid mapping key %q", l.n, s[:i])
	}
	return key, strings.TrimSpace(s[i+1:]), nil
}

// parseFlow parses an inline value: a scalar or a flow sequence of
// scalars.
func parseFlow(s string, ln int) (*node, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("line %d: unterminated flow sequence %q", ln, s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		n := &node{line: ln, seq: []*node{}}
		if inner == "" {
			return n, nil
		}
		for _, part := range splitFlowItems(inner) {
			item, err := parseScalar(strings.TrimSpace(part), ln)
			if err != nil {
				return nil, err
			}
			n.seq = append(n.seq, item)
		}
		return n, nil
	}
	return parseScalar(s, ln)
}

// splitFlowItems splits `a, b, "c,d"` on commas outside quotes.
func splitFlowItems(s string) []string {
	var parts []string
	start, inS, inD := 0, false, false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\'' && !inD:
			inS = !inS
		case s[i] == '"' && !inS && (i == 0 || s[i-1] != '\\'):
			inD = !inD
		case s[i] == ',' && !inS && !inD:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

func parseScalar(s string, ln int) (*node, error) {
	switch {
	case strings.HasPrefix(s, "\""):
		u, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad double-quoted scalar %s", ln, s)
		}
		return &node{line: ln, scalar: &scalarNode{text: u, quoted: true}}, nil
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, fmt.Errorf("line %d: bad single-quoted scalar %s", ln, s)
		}
		u := strings.ReplaceAll(s[1:len(s)-1], "''", "'")
		return &node{line: ln, scalar: &scalarNode{text: u, quoted: true}}, nil
	case strings.ContainsAny(s, "{}"):
		return nil, fmt.Errorf("line %d: flow mappings are not supported (write nested keys on their own lines)", ln)
	default:
		return &node{line: ln, scalar: &scalarNode{text: s}}, nil
	}
}

// --- JSON front-end ---

// parseJSON decodes a JSON document into the same node tree. JSON
// input has no line tracking (nodes carry line 0), so errors anchor
// to the file only.
func parseJSON(src []byte) (*node, error) {
	dec := json.NewDecoder(strings.NewReader(string(src)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return jsonNode(v), nil
}

func jsonNode(v any) *node {
	switch v := v.(type) {
	case map[string]any:
		n := &node{fields: map[string]*node{}}
		keys := make([]string, 0, len(v))
		for k := range v {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			n.keys = append(n.keys, k)
			n.fields[k] = jsonNode(v[k])
		}
		return n
	case []any:
		n := &node{seq: []*node{}}
		for _, item := range v {
			n.seq = append(n.seq, jsonNode(item))
		}
		return n
	case json.Number:
		return &node{scalar: &scalarNode{text: v.String()}}
	case string:
		return &node{scalar: &scalarNode{text: v, quoted: true}}
	case bool:
		return &node{scalar: &scalarNode{text: strconv.FormatBool(v)}}
	case nil:
		return &node{scalar: &scalarNode{text: ""}}
	default:
		return &node{scalar: &scalarNode{text: fmt.Sprint(v)}}
	}
}
