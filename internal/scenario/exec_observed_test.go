package scenario

import (
	"bytes"
	"context"
	"testing"

	"dvsslack/internal/obs"
	"dvsslack/internal/sim"
)

// TestExecuteObservedVerdictBytes pins the passivity contract of
// observer hooks: attaching a flight observer to every policy run must
// leave the canonical verdict bytes untouched, because observers only
// read the schedule. This is what lets dvsd record provenance for
// every request while still serving byte-deterministic scenario
// verdicts.
func TestExecuteObservedVerdictBytes(t *testing.T) {
	plain := mustExecute(t, mustParse(t, minimalDoc)).JSON()

	fobs := map[string]*obs.FlightObserver{}
	hook := func(spec string, pol sim.Policy) sim.Observer {
		fo := obs.NewFlightObserver(pol)
		fobs[spec] = fo
		return fo
	}
	v, err := ExecuteObserved(context.Background(), mustParse(t, minimalDoc), hook)
	if err != nil {
		t.Fatal(err)
	}
	observed := v.JSON()

	if !bytes.Equal(plain, observed) {
		t.Errorf("observed verdict differs from plain execution:\nplain:    %s\nobserved: %s", plain, observed)
	}
	for _, spec := range []string{"lpshe", "nondvs"} {
		fo := fobs[spec]
		if fo == nil {
			t.Fatalf("hook never saw policy %q (got %d observers)", spec, len(fobs))
		}
		if fo.Dispatches == 0 {
			t.Errorf("%s observer recorded no dispatches — hook not wired into the run", spec)
		}
	}
	if !fobs["lpshe"].Explains() {
		t.Error("lpshe observer lacks decision provenance")
	}
	if fobs["nondvs"].Explains() {
		t.Error("nondvs unexpectedly claims decision provenance")
	}
}
