package sim

import (
	"testing"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/workload"
)

// TestEngineDecisionSteadyStateAllocs pins the engine's allocation
// profile: a run's allocations must scale with the number of released
// jobs (one JobState each) plus a constant setup term — the decision
// loop itself (speed selection, event advance, heap maintenance, and
// the release-index refresh) must not allocate. A regression that
// adds even one allocation per scheduling decision roughly doubles
// the bound below and fails loudly.
func TestEngineDecisionSteadyStateAllocs(t *testing.T) {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(8, 0.7, 1))
	gen := workload.Uniform{Lo: 0.5, Hi: 1, Seed: 1}
	cfg := Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: 1},
		Workload:  gen,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions < 50 || res.JobsReleased < 50 {
		t.Fatalf("trivial run: %d decisions, %d jobs", res.Decisions, res.JobsReleased)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation per released job (its JobState), plus a constant
	// engine-setup budget: the engine struct, the four per-task
	// slices, the pre-sized heap backing array, and small config
	// bookkeeping. The budget is deliberately tight against the
	// decision count so per-decision allocations cannot hide in it.
	budget := float64(res.JobsReleased) + 24
	if allocs > budget {
		t.Errorf("run allocates %v (budget %v for %d jobs, %d decisions): the decision path is allocating",
			allocs, budget, res.JobsReleased, res.Decisions)
	}
}
