package sim

import (
	"math"
	"testing"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
)

func TestJitterValidation(t *testing.T) {
	bad := rtm.Task{WCET: 1, Period: 4, Jitter: 5}
	if err := bad.Validate(); err == nil {
		t.Error("jitter beyond the period should fail validation")
	}
	good := rtm.Task{WCET: 1, Period: 4, Jitter: 2}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func TestJitterShiftsReleasesDeterministically(t *testing.T) {
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 1, Period: 10, Jitter: 5})
	releases := func(seed uint64) []float64 {
		var out []float64
		obs := &funcObserver{}
		obsRel := &releaseObserver{inner: obs, out: &out}
		_, err := Run(Config{
			TaskSet:    ts,
			Processor:  cpu.Continuous(0.1),
			Policy:     fixedSpeed{s: 1},
			Horizon:    50,
			Observer:   obsRel,
			JitterSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := releases(1)
	b := releases(1)
	c := releases(2)
	if len(a) != 5 {
		t.Fatalf("releases = %d, want 5", len(a))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("same seed, different release %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			same = false
		}
		nominal := float64(i) * 10
		if a[i] < nominal-Eps || a[i] > nominal+5+Eps {
			t.Errorf("release %d at %v outside [%v, %v]", i, a[i], nominal, nominal+5)
		}
	}
	if same {
		t.Error("different jitter seeds gave identical releases")
	}
}

// releaseObserver records release times.
type releaseObserver struct {
	inner Observer
	out   *[]float64
}

func (o *releaseObserver) ObserveRelease(t float64, j *JobState) {
	*o.out = append(*o.out, t)
	if j.Release != t {
		panic("release event time disagrees with job release")
	}
	if math.Abs(j.AbsDeadline-(t+10)) > Eps {
		panic("jittered deadline must follow the actual release")
	}
}
func (o *releaseObserver) ObserveDispatch(t float64, j *JobState, s float64) {}
func (o *releaseObserver) ObserveComplete(t float64, j *JobState, m bool)    {}
func (o *releaseObserver) ObserveIdle(t0, t1 float64)                        {}
func (o *releaseObserver) ObserveSwitch(t, from, to float64)                 {}

func TestJitterFreeBehaviorUnchanged(t *testing.T) {
	// With zero jitter the seed must not matter.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 2, Period: 5})
	run := func(seed uint64) Result {
		res, err := Run(Config{
			TaskSet: ts, Processor: cpu.Continuous(0.1),
			Policy: fixedSpeed{s: 1}, Horizon: 20, JitterSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if run(1).Energy != run(99).Energy {
		t.Error("jitter seed changed a jitter-free run")
	}
}

func TestNextDecisionBoundCoversJitter(t *testing.T) {
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 10, Jitter: 3},
		rtm.Task{WCET: 1, Period: 20},
	)
	var sawBound bool
	probe := &boundProbe{t: t, saw: &sawBound}
	if _, err := Run(Config{
		TaskSet: ts, Processor: cpu.Continuous(0.1),
		Policy: probe, Horizon: 40,
	}); err != nil {
		t.Fatal(err)
	}
	if !sawBound {
		t.Error("probe never ran")
	}
}

// boundProbe checks System invariants at every decision.
type boundProbe struct {
	NopHooks
	t   *testing.T
	sys System
	saw *bool
}

func (p *boundProbe) Name() string     { return "probe" }
func (p *boundProbe) Reset(sys System) { p.sys = sys }
func (p *boundProbe) SelectSpeed(j *JobState) float64 {
	*p.saw = true
	now := p.sys.Now()
	if nr := p.sys.NextRelease(); nr < now-Eps {
		p.t.Errorf("NextRelease %v before now %v", nr, now)
	}
	if b := p.sys.NextDecisionBound(); !math.IsInf(b, 1) {
		if b < now-Eps {
			p.t.Errorf("NextDecisionBound %v before now %v", b, now)
		}
		if b+Eps < p.sys.NextRelease() {
			p.t.Errorf("decision bound %v below earliest release %v", b, p.sys.NextRelease())
		}
	}
	return 1
}
