package sim

import "fmt"

// Result aggregates one simulation run.
type Result struct {
	// Policy is the name of the policy that produced the run.
	Policy string

	// Time is the simulated duration (the configured horizon, or
	// the last completion time if a job overran it).
	Time float64

	// Energy is the total energy consumed: Busy + Idle + Switch.
	Energy float64
	// BusyEnergy is the energy spent executing jobs.
	BusyEnergy float64
	// IdleEnergy is the energy spent while no job was ready.
	IdleEnergy float64
	// SwitchEnergy is the energy spent in speed/voltage transitions.
	SwitchEnergy float64

	// JobsReleased and JobsCompleted count jobs over the run.
	JobsReleased  int
	JobsCompleted int

	// DeadlineMisses counts jobs that completed after their
	// absolute deadline (beyond tolerance). Any non-zero value
	// violates the hard real-time contract of the shipped policies.
	DeadlineMisses int

	// SpeedSwitches counts changes of the processor speed setting.
	SpeedSwitches int
	// Preemptions counts the times a started job was displaced by
	// an earlier-deadline arrival.
	Preemptions int
	// Decisions counts policy SelectSpeed invocations (the number
	// of scheduling points).
	Decisions int

	// IdleTime is the total duration with no ready job.
	IdleTime float64
	// Sleeps counts deep-sleep entries (sleep-enabled processors).
	Sleeps int
	// SleepTime is the idle time spent in deep sleep.
	SleepTime float64
	// WorkDone is the total executed work in full-speed units.
	WorkDone float64
	// SpeedTimeIntegral is ∫ s dt over busy intervals; equals
	// WorkDone and is kept separately as an internal consistency
	// check.
	SpeedTimeIntegral float64

	// PolicyCounters carries Instrumented policy counters, if any.
	PolicyCounters map[string]float64
}

// NormalizedTo returns this run's energy divided by the reference
// energy (conventionally the non-DVS run on the identical workload).
func (r Result) NormalizedTo(ref Result) float64 {
	if ref.Energy == 0 {
		return 0
	}
	return r.Energy / ref.Energy
}

// AvgSpeed returns the average busy speed WorkDone / busy time.
func (r Result) AvgSpeed() float64 {
	busy := r.Time - r.IdleTime
	if busy <= 0 {
		return 0
	}
	return r.WorkDone / busy
}

// String implements fmt.Stringer with a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s: E=%.4f (busy %.4f, idle %.4f, switch %.4f) jobs=%d misses=%d switches=%d",
		r.Policy, r.Energy, r.BusyEnergy, r.IdleEnergy, r.SwitchEnergy,
		r.JobsCompleted, r.DeadlineMisses, r.SpeedSwitches)
}
