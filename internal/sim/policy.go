package sim

import (
	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
)

// System is the read-only view of the running simulation that a
// Policy may consult. It is valid only during policy callbacks.
type System interface {
	// TaskSet returns the static task set being scheduled.
	TaskSet() *rtm.TaskSet
	// Processor returns the processor configuration.
	Processor() *cpu.Processor
	// Now returns the current simulation time.
	Now() float64
	// ActiveJobs returns every released, incomplete job (including
	// the one currently being dispatched), in no particular order.
	// The returned slice is shared with the engine: read-only,
	// valid only for the duration of the callback.
	ActiveJobs() []*JobState
	// NextRelease returns the earliest *possible* future release
	// time across all tasks (+Inf if none): for jitter-free tasks
	// this is the exact next release; for jittered tasks whose
	// nominal instant has passed it is the current time, since the
	// arrival may happen at any moment. Policies never observe the
	// drawn arrival times themselves.
	NextRelease() float64
	// NextReleaseOf returns the earliest possible next release time
	// of task i, continuing the periodic pattern indefinitely (the
	// simulation horizon does not truncate it, which keeps
	// look-ahead policies conservative near the end of a run).
	NextReleaseOf(task int) float64
	// NextDecisionBound returns the latest instant by which a
	// release — and therefore a fresh scheduling decision — is
	// guaranteed to occur (nominal next release plus jitter,
	// minimized over tasks with releases remaining; +Inf when
	// none). Policies whose deadline argument relies on "the
	// analysis reruns soon" must use this bound, not NextRelease.
	NextDecisionBound() float64
}

// Policy decides the processor speed for the job about to execute.
// The engine calls SelectSpeed at every scheduling point — each job
// release and each job completion — for the earliest-deadline active
// job; the returned speed is clamped to the processor's usable range
// (rounded up to a discrete level when applicable) before use.
//
// Implementations must be deterministic and must guarantee that no
// deadline is missed for any EDF-feasible task set when the clamped
// speed is applied; the test suite fuzzes this property for every
// policy shipped in this module.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Reset re-initializes internal state for a fresh run over sys.
	// It is called once before simulation begins.
	Reset(sys System)
	// SelectSpeed returns the desired speed for job j at time
	// sys.Now().
	SelectSpeed(j *JobState) float64
	// OnRelease notifies the policy that job j has been released.
	OnRelease(j *JobState)
	// OnComplete notifies the policy that job j has completed;
	// j.Executed holds the actual work performed and j.Finish the
	// completion time.
	OnComplete(j *JobState)
	// OnAdvance notifies the policy that dt units of wall-clock
	// time have elapsed (busy or idle). Called before the
	// release/completion hooks at the new time.
	OnAdvance(dt float64)
}

// NopHooks provides no-op implementations of the optional Policy
// hooks for embedding in policies that only implement SelectSpeed.
type NopHooks struct{}

// OnRelease implements Policy.
func (NopHooks) OnRelease(*JobState) {}

// OnComplete implements Policy.
func (NopHooks) OnComplete(*JobState) {}

// OnAdvance implements Policy.
func (NopHooks) OnAdvance(float64) {}

// Repacer is an optional interface for policies that place
// *intra-job* power-management points: after dispatching job j at the
// selected speed, the engine asks NextCheck for the absolute time of
// the policy's next mid-job speed-change point and inserts a
// scheduling decision there (in addition to the usual release and
// completion points). Return +Inf for "none". Times at or before the
// current instant are pushed forward by a minimum quantum, so a
// misbehaving Repacer can degrade performance but not livelock the
// engine.
//
// This is the hook for intra-task DVS schemes such as the
// Ishihara-Yasuura two-level emulation of a continuous speed on a
// discrete processor (see internal/dvs.DualLevel).
type Repacer interface {
	NextCheck(j *JobState) float64
}

// Instrumented is an optional interface a Policy may implement to
// expose internal work counters (e.g. slack-analysis scan lengths)
// for the overhead experiments.
type Instrumented interface {
	// Counters returns named counter values accumulated since the
	// last Reset.
	Counters() map[string]float64
}

// DecisionPath classifies how a policy arrived at a speed decision —
// which analysis path produced the number. The taxonomy mirrors the
// lpSHE incremental analyzer (PR 8): a decision is either served from
// the slack staircase without running the analysis at all, stopped
// early by the demand-grid certificate, degraded by the adaptive
// horizon cap, or computed by a full scan.
type DecisionPath uint8

const (
	// PathUnknown: the policy does not classify decisions (or the
	// decision predates any analysis, e.g. zero remaining work).
	PathUnknown DecisionPath = iota
	// PathFullScan: the slack analysis ran to its natural end with no
	// early stop.
	PathFullScan
	// PathCertificate: the analysis stopped early because the demand
	// grid certified that no unscanned deadline could change the
	// reading.
	PathCertificate
	// PathStaircase: the analysis was skipped entirely — the slack
	// staircase lower bound already cleared the pacing floor.
	PathStaircase
	// PathAdaptiveCap: the scan was truncated by the adaptive horizon
	// (or scan budget) and the reading conservatively degraded.
	PathAdaptiveCap
)

// String returns the canonical lower-snake name used in flight
// records, counters, and --explain summaries.
func (p DecisionPath) String() string {
	switch p {
	case PathFullScan:
		return "full_scan"
	case PathCertificate:
		return "certificate"
	case PathStaircase:
		return "staircase"
	case PathAdaptiveCap:
		return "adaptive_cap"
	default:
		return "unknown"
	}
}

// DecisionInfo is the provenance of the most recent SelectSpeed call:
// which path produced the decision, how many deadlines the analysis
// scanned (0 for staircase hits), and the cumulative slack credits the
// policy has harvested since Reset.
type DecisionInfo struct {
	Path DecisionPath
	// ScanLen is the number of deadlines scanned by the analysis for
	// this decision (0 when the analysis was skipped).
	ScanLen int
	// Credits is the total slack credit (executed-work + unused
	// allowance) harvested onto the staircase since Reset, in work
	// units at nominal speed.
	Credits float64
}

// DecisionExplainer is an optional interface a Policy may implement
// to expose per-decision provenance. LastDecision reports on the most
// recent SelectSpeed call and is only valid until the next one; the
// flight recorder snapshots it at each dispatch.
type DecisionExplainer interface {
	LastDecision() DecisionInfo
}

// Observer receives fine-grained engine events, e.g. for trace
// recording. All callbacks are synchronous; observers must not
// mutate engine state.
type Observer interface {
	ObserveRelease(t float64, j *JobState)
	ObserveDispatch(t float64, j *JobState, speed float64)
	ObserveComplete(t float64, j *JobState, missed bool)
	ObserveIdle(t0, t1 float64)
	ObserveSwitch(t, from, to float64)
}
