package sim

import (
	"errors"
	"fmt"

	"dvsslack/internal/snapbuf"
)

// SnapshotContext is the engine-provided view a policy uses to
// serialize references to live jobs. Job pointers cannot travel
// through a snapshot; a policy encodes JobRef(j) — the job's position
// in the engine's ready queue — and rebinds it with JobAt on restore.
// The ready queue's array order is preserved verbatim across a
// snapshot (it is part of the determinism contract), so a reference
// captured at a checkpoint boundary resolves to the same job after
// restore.
type SnapshotContext interface {
	// JobRef returns a stable reference for a live job (its ready
	// queue position), or -1 for nil or a job no longer in the queue
	// (completed jobs, whose pointers restore to nil).
	JobRef(j *JobState) int
	// JobAt resolves a reference produced by JobRef; -1 and
	// out-of-range references resolve to nil.
	JobAt(ref int) *JobState
}

// StateSnapshotter is the interface a Policy must implement to
// participate in checkpoint/restore. SnapshotState appends the
// policy's mutable run state to enc; RestoreState reads it back in
// the same field order after Reset has re-derived everything
// construction-time (bindings, scratch buffers, configuration).
// Stateless policies implement both as no-ops.
//
// The round-trip contract: Reset(sys) followed by RestoreState of a
// snapshot taken at a checkpoint boundary must leave the policy
// making bit-identical decisions to the policy that was snapshotted.
type StateSnapshotter interface {
	SnapshotState(enc *snapbuf.Encoder, sc SnapshotContext)
	RestoreState(dec *snapbuf.Decoder, sc SnapshotContext) error
}

// ErrNoSnapshot reports a policy (or inner wrapped policy) that does
// not implement StateSnapshotter: its run state cannot be captured,
// so the engine refuses to snapshot rather than silently dropping it.
var ErrNoSnapshot = errors.New("sim: policy does not support snapshot/restore")

// JobRef implements SnapshotContext over the ready queue.
func (e *Engine) JobRef(j *JobState) int {
	if j == nil {
		return -1
	}
	if i := j.heapIndex; i >= 0 && i < len(e.active.jobs) && e.active.jobs[i] == j {
		return i
	}
	return -1
}

// JobAt implements SnapshotContext.
func (e *Engine) JobAt(ref int) *JobState {
	if ref < 0 || ref >= len(e.active.jobs) {
		return nil
	}
	return e.active.jobs[ref]
}

// Snapshot serializes the engine's complete dynamic state — clock,
// ready queue (in exact heap-array order, which the floating-point
// summation order of the policies depends on), release cursors,
// energy/cycle accounting, and the policy's run state — at a Step
// boundary. The bytes carry no framing; internal/snapshot wraps them
// with magic, version, and checksum. Snapshot fails on an errored
// engine and on policies that do not implement StateSnapshotter.
func (e *Engine) Snapshot() ([]byte, error) {
	if e.err != nil {
		return nil, fmt.Errorf("sim: cannot snapshot an errored engine: %w", e.err)
	}
	sp, ok := e.cfg.Policy.(StateSnapshotter)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSnapshot, e.cfg.Policy.Name())
	}
	enc := snapbuf.NewEncoder()
	enc.Bool(e.began)
	if !e.began {
		return enc.Bytes(), nil
	}
	enc.Bool(e.ended)
	enc.Float64(e.t)
	enc.Float64(e.horizon) // config-consistency check on restore
	enc.Float64(e.curSpeed)
	enc.Bool(e.speedSet)
	enc.Ints(e.nextIdx)

	// Ready queue in verbatim array order. nomNext/actualNext are
	// pure functions of nextIdx (k·Period and the stateless jitter
	// hash) and are recomputed on restore.
	enc.Int(len(e.active.jobs))
	for _, j := range e.active.jobs {
		enc.Int(j.TaskIndex)
		enc.Int(j.Index)
		enc.Float64(j.Release)
		enc.Float64(j.AbsDeadline)
		enc.Float64(j.WCET)
		enc.Float64(j.AET)
		enc.Float64(j.Executed)
		enc.Float64(j.Speed)
		enc.Float64(j.Priority)
		enc.Bool(j.Started)
	}
	enc.Int(e.JobRef(e.running))

	r := &e.res
	enc.Float64(r.BusyEnergy)
	enc.Float64(r.IdleEnergy)
	enc.Float64(r.SwitchEnergy)
	enc.Int(r.JobsReleased)
	enc.Int(r.JobsCompleted)
	enc.Int(r.DeadlineMisses)
	enc.Int(r.SpeedSwitches)
	enc.Int(r.Preemptions)
	enc.Int(r.Decisions)
	enc.Float64(r.IdleTime)
	enc.Int(r.Sleeps)
	enc.Float64(r.SleepTime)
	enc.Float64(r.WorkDone)
	enc.Float64(r.SpeedTimeIntegral)

	sp.SnapshotState(enc, e)
	return enc.Bytes(), nil
}

// RestoreEngine builds an engine for cfg and rewinds it to the state
// captured by Snapshot. cfg must describe the same simulation the
// snapshot was taken from (the snapshot envelope binds the scenario
// key; this layer additionally cross-checks structural invariants
// and fails closed on any mismatch). On error the returned engine is
// nil — no partially restored engine ever escapes.
func RestoreEngine(cfg Config, state []byte) (*Engine, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.restoreState(state); err != nil {
		return nil, fmt.Errorf("sim: restore: %w", err)
	}
	return e, nil
}

func (e *Engine) restoreState(state []byte) error {
	sp, ok := e.cfg.Policy.(StateSnapshotter)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSnapshot, e.cfg.Policy.Name())
	}
	dec := snapbuf.NewDecoder(state)
	began := dec.Bool()
	if !began {
		return dec.Finish() // pre-start snapshot: the fresh engine IS the state
	}
	e.began = true
	e.ended = dec.Bool()
	e.t = dec.Float64()
	if h := dec.Float64(); dec.Err() == nil && h != e.horizon {
		return fmt.Errorf("snapshot horizon %v does not match configured horizon %v", h, e.horizon)
	}
	e.curSpeed = dec.Float64()
	e.speedSet = dec.Bool()
	nextIdx := dec.Ints()
	if dec.Err() == nil && len(nextIdx) != len(e.nextIdx) {
		return fmt.Errorf("snapshot has %d release cursors for %d tasks", len(nextIdx), len(e.nextIdx))
	}

	n := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if n < 0 || n > dec.Remaining()/8 {
		return fmt.Errorf("implausible ready-queue length %d", n)
	}
	// Pre-size to at least the task count so later releases keep the
	// no-realloc property of a fresh engine's ready queue.
	capJobs := n
	if nt := e.cfg.TaskSet.N(); nt > capJobs {
		capJobs = nt
	}
	jobs := make([]*JobState, n, capJobs)
	for i := range jobs {
		j := &JobState{heapIndex: i}
		j.TaskIndex = dec.Int()
		j.Index = dec.Int()
		j.Release = dec.Float64()
		j.AbsDeadline = dec.Float64()
		j.WCET = dec.Float64()
		j.AET = dec.Float64()
		j.Executed = dec.Float64()
		j.Speed = dec.Float64()
		j.Priority = dec.Float64()
		j.Started = dec.Bool()
		jobs[i] = j
	}
	runningRef := dec.Int()

	var res Result
	res.Policy = e.res.Policy
	res.BusyEnergy = dec.Float64()
	res.IdleEnergy = dec.Float64()
	res.SwitchEnergy = dec.Float64()
	res.JobsReleased = dec.Int()
	res.JobsCompleted = dec.Int()
	res.DeadlineMisses = dec.Int()
	res.SpeedSwitches = dec.Int()
	res.Preemptions = dec.Int()
	res.Decisions = dec.Int()
	res.IdleTime = dec.Float64()
	res.Sleeps = dec.Int()
	res.SleepTime = dec.Float64()
	res.WorkDone = dec.Float64()
	res.SpeedTimeIntegral = dec.Float64()
	if err := dec.Err(); err != nil {
		return err
	}

	// Structural validation before committing anything further: task
	// indices in range, job identity consistent with the task set,
	// and the heap invariant intact (the array is stored verbatim; a
	// corrupted order would silently change dispatch decisions).
	ntasks := e.cfg.TaskSet.N()
	for i, j := range jobs {
		if j.TaskIndex < 0 || j.TaskIndex >= ntasks {
			return fmt.Errorf("job %d: task index %d out of range", i, j.TaskIndex)
		}
		if j.Index < 0 {
			return fmt.Errorf("job %d: negative job index %d", i, j.Index)
		}
	}
	for i := range nextIdx {
		if nextIdx[i] < 0 {
			return fmt.Errorf("task %d: negative release cursor", i)
		}
	}
	h := jobHeap{jobs: jobs, byPriority: e.active.byPriority}
	for i := 1; i < len(jobs); i++ {
		if h.Less(i, (i-1)/2) {
			return fmt.Errorf("ready queue heap invariant violated at index %d", i)
		}
	}
	if runningRef < -1 || runningRef >= n {
		return fmt.Errorf("running-job reference %d out of range", runningRef)
	}

	// Commit the engine state.
	copy(e.nextIdx, nextIdx)
	ts := e.cfg.TaskSet
	for i := range e.nextIdx {
		e.nomNext[i] = float64(e.nextIdx[i]) * ts.Tasks[i].Period
		e.actualNext[i] = e.jitteredRelease(i, e.nextIdx[i])
	}
	e.rel.dirty = true
	e.active.jobs = jobs
	e.running = nil
	if runningRef >= 0 {
		e.running = jobs[runningRef]
	}
	e.res = res

	// Policy: Reset re-derives bindings, scratch, and configuration
	// against the restored engine; RestoreState then overwrites the
	// mutable run state. The order matters — Reset must never run
	// after RestoreState.
	e.cfg.Policy.Reset(e)
	if err := sp.RestoreState(dec, e); err != nil {
		return err
	}
	return dec.Finish()
}
