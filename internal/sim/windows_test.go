package sim

import (
	"reflect"
	"strings"
	"testing"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
)

// TestWindowsRestrictReleases pins the basic semantics: a task with
// activity windows releases exactly the jobs whose nominal release
// instants fall inside one.
func TestWindowsRestrictReleases(t *testing.T) {
	ts := rtm.NewTaskSet("win", rtm.Task{WCET: 1, Period: 4})
	// Nominal releases over horizon 32: 0,4,8,...,28 (8 jobs).
	// Window [8,20) keeps 8,12,16 — three jobs.
	res := mustRun(t, Config{
		TaskSet:       ts,
		Processor:     cpu.Continuous(0.1),
		Policy:        fixedSpeed{s: 1},
		Horizon:       32,
		ActiveWindows: [][]Window{{{Start: 8, End: 20}}},
	})
	if res.JobsReleased != 3 || res.JobsCompleted != 3 {
		t.Fatalf("released/completed = %d/%d, want 3/3", res.JobsReleased, res.JobsCompleted)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("deadline misses = %d", res.DeadlineMisses)
	}
}

// TestWindowsArrivalDeparture models a mode change: one task active
// for the whole run, one arriving late, one departing early.
func TestWindowsArrivalDeparture(t *testing.T) {
	ts := rtm.NewTaskSet("mode",
		rtm.Task{WCET: 1, Period: 8},  // always active: 8 jobs over 64
		rtm.Task{WCET: 1, Period: 8},  // arrives at 32: jobs 32..56 = 4
		rtm.Task{WCET: 1, Period: 16}, // departs at 32: jobs 0,16 = 2
	)
	res := mustRun(t, Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: 1},
		Horizon:   64,
		ActiveWindows: [][]Window{
			nil, // empty list = always active
			{{Start: 32, End: 64}},
			{{Start: 0, End: 32}},
		},
	})
	if want := 8 + 4 + 2; res.JobsReleased != want {
		t.Fatalf("released = %d, want %d", res.JobsReleased, want)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("deadline misses = %d", res.DeadlineMisses)
	}
}

// TestWindowsMultipleIntervals exercises a task that pauses and
// resumes: two disjoint windows.
func TestWindowsMultipleIntervals(t *testing.T) {
	ts := rtm.NewTaskSet("pause", rtm.Task{WCET: 1, Period: 4})
	res := mustRun(t, Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: 1},
		Horizon:   32,
		// Keeps 0,4 then 24,28 — four jobs.
		ActiveWindows: [][]Window{{{Start: 0, End: 8}, {Start: 24, End: 32}}},
	})
	if res.JobsReleased != 4 {
		t.Fatalf("released = %d, want 4", res.JobsReleased)
	}
}

// TestWindowsDeterministic pins that windowed runs are reproducible,
// including under release jitter (surviving jobs draw the same jitter
// as they would in an unwindowed run).
func TestWindowsDeterministic(t *testing.T) {
	cfg := Config{
		TaskSet: rtm.NewTaskSet("det",
			rtm.Task{WCET: 1, Period: 5, Jitter: 0.5},
			rtm.Task{WCET: 2, Period: 10}),
		Processor:     cpu.Continuous(0.1),
		Policy:        fixedSpeed{s: 1},
		Horizon:       100,
		JitterSeed:    42,
		ActiveWindows: [][]Window{{{Start: 20, End: 80}}, nil},
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("windowed runs diverge:\n%+v\n%+v", a, b)
	}
	if a.JobsReleased != 12+10 {
		t.Fatalf("released = %d, want 22", a.JobsReleased)
	}
}

// TestWindowsValidation pins the config error surface.
func TestWindowsValidation(t *testing.T) {
	base := func() Config {
		return Config{
			TaskSet:   oneTask(1, 4),
			Processor: cpu.Continuous(0.1),
			Policy:    fixedSpeed{s: 1},
			Horizon:   8,
		}
	}
	cases := []struct {
		name string
		ws   [][]Window
		want string
	}{
		{"wrong length", [][]Window{nil, nil}, "ActiveWindows has 2 entries for 1 tasks"},
		{"inverted", [][]Window{{{Start: 4, End: 2}}}, "empty or inverted"},
		{"empty interval", [][]Window{{{Start: 2, End: 2}}}, "empty or inverted"},
		{"negative start", [][]Window{{{Start: -1, End: 2}}}, "finite non-negative"},
		{"overlap", [][]Window{{{Start: 0, End: 4}, {Start: 2, End: 6}}}, "before the previous window ends"},
	}
	for _, tc := range cases {
		cfg := base()
		cfg.ActiveWindows = tc.ws
		if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestWindowsAllSuppressed runs a task set whose only task never
// becomes active: the run idles out the horizon with zero jobs.
func TestWindowsAllSuppressed(t *testing.T) {
	res := mustRun(t, Config{
		TaskSet:       oneTask(1, 4),
		Processor:     cpu.Continuous(0.1),
		Policy:        fixedSpeed{s: 1},
		Horizon:       16,
		ActiveWindows: [][]Window{{{Start: 100, End: 200}}},
	})
	if res.JobsReleased != 0 || res.IdleTime != 16 {
		t.Fatalf("released=%d idle=%v, want 0 jobs and 16 idle", res.JobsReleased, res.IdleTime)
	}
}
