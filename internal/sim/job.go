// Package sim implements the discrete-event simulator for
// EDF-scheduled periodic tasks on a variable-voltage processor.
//
// The engine models job releases, preemptive earliest-deadline-first
// dispatching, per-dispatch speed selection by a pluggable DVS
// policy, actual-execution-time early completion, idle intervals, and
// optional speed-transition overhead (stall time and transition
// energy). Energy is integrated from the processor's power model.
//
// Time is continuous (float64). Between two consecutive events
// (release, completion, or transition stall) the processor state is
// constant, so integration is exact. All comparisons use a small
// absolute tolerance (Eps) to absorb floating-point drift.
package sim

import (
	"math"

	"dvsslack/internal/rtm"
)

// Eps is the absolute time tolerance used for event ordering and
// deadline checks. Task parameters in this library are O(1)-O(1000)
// time units, and simulations run for at most millions of events, so
// accumulated float64 drift stays far below this value.
const Eps = 1e-6

// JobState is a released job plus its execution progress. Policies
// receive *JobState at hook and dispatch points; they must treat the
// embedded Job as read-only and may not mutate Executed or Speed
// (those belong to the engine).
type JobState struct {
	rtm.Job

	// Executed is the work completed so far, in full-speed units
	// (cycles normalized like WCET). The job completes when
	// Executed reaches AET.
	Executed float64

	// Speed is the most recently assigned execution speed.
	Speed float64

	// Started reports whether the job has ever run.
	Started bool

	// Finish is the completion time, valid once Done.
	Finish float64

	// Done reports whether the job has completed.
	Done bool

	// Priority is the dispatch key under fixed-priority scheduling
	// (lower value = more urgent); unused under EDF.
	Priority float64

	heapIndex int
}

// RemainingWCET returns the worst-case work still outstanding, the
// quantity every deadline-safe policy budgets for (the scheduler
// never knows the actual execution time in advance).
func (j *JobState) RemainingWCET() float64 {
	r := j.WCET - j.Executed
	if r < 0 {
		return 0
	}
	return r
}

// remainingActual returns the work that will actually be performed
// before the job completes. Engine-internal: policies must not
// observe AET-derived quantities before completion.
func (j *JobState) remainingActual() float64 {
	r := j.AET - j.Executed
	if r < 0 {
		return 0
	}
	return r
}

// Laxity returns AbsDeadline - now - RemainingWCET: the wall-clock
// slack the job itself has at full speed.
func (j *JobState) Laxity(now float64) float64 {
	return j.AbsDeadline - now - j.RemainingWCET()
}

// jobHeap orders active jobs by dispatch urgency. Under EDF (the
// default, and the paper's model) the key is the absolute deadline;
// under fixed-priority scheduling it is the job's Priority value.
// Ties break by release time then task index so schedules are
// deterministic.
type jobHeap struct {
	jobs       []*JobState
	byPriority bool
}

func (h *jobHeap) Len() int { return len(h.jobs) }

func (h *jobHeap) Less(a, b int) bool {
	x, y := h.jobs[a], h.jobs[b]
	if h.byPriority {
		if x.Priority != y.Priority {
			return x.Priority < y.Priority
		}
	} else if x.AbsDeadline != y.AbsDeadline {
		return x.AbsDeadline < y.AbsDeadline
	}
	if x.Release != y.Release {
		return x.Release < y.Release
	}
	return x.TaskIndex < y.TaskIndex
}

func (h *jobHeap) Swap(a, b int) {
	h.jobs[a], h.jobs[b] = h.jobs[b], h.jobs[a]
	h.jobs[a].heapIndex = a
	h.jobs[b].heapIndex = b
}

func (h *jobHeap) Push(x any) {
	j := x.(*JobState)
	j.heapIndex = len(h.jobs)
	h.jobs = append(h.jobs, j)
}

func (h *jobHeap) Pop() any {
	n := len(h.jobs)
	j := h.jobs[n-1]
	h.jobs[n-1] = nil
	j.heapIndex = -1
	h.jobs = h.jobs[:n-1]
	return j
}

// infinity is a convenience alias for +Inf release sentinels.
var infinity = math.Inf(1)
