package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"dvsslack/internal/cpu"
	"dvsslack/internal/prng"
	"dvsslack/internal/rtm"
	"dvsslack/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// TaskSet is the periodic task set to schedule (required).
	TaskSet *rtm.TaskSet
	// Processor is the CPU model (required; its SMin or lowest
	// level must be positive).
	Processor *cpu.Processor
	// Policy selects execution speeds (required).
	Policy Policy
	// Workload generates per-job actual execution times. Nil means
	// every job runs to its WCET.
	Workload workload.Generator
	// Horizon is the release horizon: jobs released strictly before
	// it are simulated to completion. Zero selects DefaultHorizon.
	Horizon float64
	// StrictDeadlines makes Run return an error on the first
	// deadline miss instead of counting it.
	StrictDeadlines bool
	// Observer, when non-nil, receives fine-grained events.
	Observer Observer
	// JitterSeed selects the pseudo-random stream for release
	// jitter (tasks with a positive Jitter field). The stream is a
	// pure function of (JitterSeed, task, job index), so runs are
	// reproducible and identical across policies.
	JitterSeed uint64
	// FixedPriorities, when non-empty, switches dispatching from
	// EDF to preemptive fixed-priority scheduling: entry i is task
	// i's priority (lower = more urgent; see
	// analysis.RateMonotonicPriorities). Length must equal the task
	// count. The shipped DVS policies assume EDF — use fixed
	// priorities only with NonDVS/constant-speed policies or
	// schedulability studies.
	FixedPriorities []int
	// ActiveWindows, when non-empty, restricts when each task
	// releases jobs: entry i lists task i's activity windows, and a
	// job is released iff its *nominal* release instant (index ×
	// period) falls inside one of them. An empty per-task list means
	// the task is always active. Length must equal the task count.
	//
	// Ineligible releases are skipped entirely — the cursors jump
	// past them — so surviving jobs keep their k·Period release grid
	// and every audit invariant holds unchanged. Mode changes (task
	// arrival mid-run, departure, a task that pauses and resumes)
	// are all expressible this way. Skipping future releases only
	// removes demand the slack analysis would otherwise budget for,
	// so the lpSHE deadline guarantee is preserved: the analysis
	// stays conservative, never optimistic.
	ActiveWindows [][]Window
}

// Window is a half-open activity interval [Start, End): a task with
// activity windows releases exactly the jobs whose nominal release
// instants fall inside one.
type Window struct {
	Start float64
	End   float64
}

// DefaultHorizon returns the standard simulation length for a task
// set: one hyperperiod when it is exactly computable and of
// reasonable size, otherwise 32 times the largest period.
func DefaultHorizon(ts *rtm.TaskSet) float64 {
	const maxHyper = 1e7
	if h, ok := ts.Hyperperiod(); ok && h <= maxHyper {
		return h
	}
	return 32 * ts.MaxPeriod()
}

// Run executes one simulation and returns its aggregate Result.
func Run(cfg Config) (Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run()
}

// Engine is the mutable simulation state. Construct with NewEngine;
// either drive the whole run with Run, or step event by event with
// Step/Finish — every Step boundary is a valid checkpoint instant for
// Snapshot/Restore (see engine_state.go).
type Engine struct {
	cfg     Config
	horizon float64

	began bool // Policy.Reset and the initial releases happened
	ended bool // the event loop reached its natural end

	t          float64
	active     jobHeap
	nextIdx    []int     // next job index per task
	nomNext    []float64 // nominal next release (index * period)
	actualNext []float64 // jittered next release (>= nominal)

	rel releaseIndex

	curSpeed float64
	speedSet bool
	running  *JobState

	res Result
	err error
}

// releaseIndex caches the three minima over the per-task release
// cursors that the engine and the policies query at every scheduling
// decision — often several times per decision (the slack analysis
// alone reads NextRelease and NextDecisionBound, and the event loop
// reads nextReleaseEvent between every pair of events). The cursors
// only move forward when releaseDue admits a job, so the minima are
// recomputed in one O(n) pass per release advance and served as O(1)
// reads in between, replacing the previous O(n) scan per query.
type releaseIndex struct {
	dirty    bool
	minNom   float64 // min over tasks of the nominal next release
	minEvent float64 // earliest actual (jittered) release with nominal < horizon
	minBound float64 // earliest guaranteed release (nominal+jitter) with nominal < horizon
}

// refreshReleaseIndex recomputes the cached minima after the release
// cursors moved. One pass covers all three so a release batch costs a
// single O(n) scan regardless of how many queries follow.
func (e *Engine) refreshReleaseIndex() {
	if !e.rel.dirty {
		return
	}
	e.rel.dirty = false
	e.rel.minNom, e.rel.minEvent, e.rel.minBound = infinity, infinity, infinity
	tasks := e.cfg.TaskSet.Tasks
	for i := range e.nomNext {
		nom := e.nomNext[i]
		if nom < e.rel.minNom {
			e.rel.minNom = nom
		}
		if nom >= e.horizon {
			continue
		}
		if a := e.actualNext[i]; a < e.rel.minEvent {
			e.rel.minEvent = a
		}
		if b := nom + tasks[i].Jitter; b < e.rel.minBound {
			e.rel.minBound = b
		}
	}
}

// NewEngine validates cfg and returns a fresh engine positioned at
// t = 0, before any policy reset or release. Use Run for a whole run
// or Step/Finish to drive it event by event.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.TaskSet == nil {
		return nil, errors.New("sim: Config.TaskSet is required")
	}
	if err := cfg.TaskSet.Validate(); err != nil {
		return nil, err
	}
	if cfg.Processor == nil {
		return nil, errors.New("sim: Config.Processor is required")
	}
	if err := cfg.Processor.Validate(); err != nil {
		return nil, err
	}
	if cfg.Processor.Clamp(0) <= 0 {
		return nil, errors.New("sim: processor minimum speed must be positive")
	}
	if cfg.Policy == nil {
		return nil, errors.New("sim: Config.Policy is required")
	}
	if cfg.Workload == nil {
		cfg.Workload = workload.WorstCase{}
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = DefaultHorizon(cfg.TaskSet)
	}
	if horizon <= 0 || math.IsInf(horizon, 0) || math.IsNaN(horizon) {
		return nil, fmt.Errorf("sim: invalid horizon %v", horizon)
	}
	n := cfg.TaskSet.N()
	if len(cfg.FixedPriorities) != 0 && len(cfg.FixedPriorities) != n {
		return nil, fmt.Errorf("sim: FixedPriorities has %d entries for %d tasks",
			len(cfg.FixedPriorities), n)
	}
	if len(cfg.ActiveWindows) != 0 {
		if len(cfg.ActiveWindows) != n {
			return nil, fmt.Errorf("sim: ActiveWindows has %d entries for %d tasks",
				len(cfg.ActiveWindows), n)
		}
		for i, ws := range cfg.ActiveWindows {
			prev := math.Inf(-1)
			for k, w := range ws {
				if !(w.Start >= 0) || math.IsInf(w.Start, 0) || math.IsNaN(w.End) || math.IsInf(w.End, 0) {
					return nil, fmt.Errorf("sim: ActiveWindows[%d][%d] = [%v,%v) is not a finite non-negative interval",
						i, k, w.Start, w.End)
				}
				if w.End <= w.Start {
					return nil, fmt.Errorf("sim: ActiveWindows[%d][%d] = [%v,%v) is empty or inverted",
						i, k, w.Start, w.End)
				}
				if w.Start < prev {
					return nil, fmt.Errorf("sim: ActiveWindows[%d][%d] starts at %v, before the previous window ends (%v)",
						i, k, w.Start, prev)
				}
				prev = w.End
			}
		}
	}
	e := &Engine{
		cfg:        cfg,
		horizon:    horizon,
		nextIdx:    make([]int, n),
		nomNext:    make([]float64, n),
		actualNext: make([]float64, n),
	}
	e.active.byPriority = len(cfg.FixedPriorities) != 0
	// Pre-size the ready queue from the task count: with feasible
	// implicit-deadline sets at most one job per task is live, so the
	// heap's backing array never reallocates mid-run.
	e.active.jobs = make([]*JobState, 0, n)
	for i := range cfg.TaskSet.Tasks {
		e.actualNext[i] = e.jitteredRelease(i, 0)
		e.skipInactive(i)
	}
	e.rel.dirty = true
	e.res.Policy = cfg.Policy.Name()
	return e, nil
}

// releaseEligible reports whether job k·Period of task i survives the
// configured activity windows.
func (e *Engine) releaseEligible(task int, nominal float64) bool {
	if len(e.cfg.ActiveWindows) == 0 {
		return true
	}
	ws := e.cfg.ActiveWindows[task]
	if len(ws) == 0 {
		return true
	}
	for _, w := range ws {
		if nominal >= w.Start && nominal < w.End {
			return true
		}
	}
	return false
}

// skipInactive advances task i's release cursors past every nominal
// release the activity windows suppress, stopping at the first
// eligible release (or the horizon). Surviving jobs keep their
// nominal k·Period grid, so job indices and the audit oracle's
// release-window invariant are untouched.
func (e *Engine) skipInactive(i int) {
	if len(e.cfg.ActiveWindows) == 0 || len(e.cfg.ActiveWindows[i]) == 0 {
		return
	}
	period := e.cfg.TaskSet.Tasks[i].Period
	for e.nomNext[i] < e.horizon && !e.releaseEligible(i, e.nomNext[i]) {
		e.nextIdx[i]++
		e.nomNext[i] = float64(e.nextIdx[i]) * period
		e.actualNext[i] = e.jitteredRelease(i, e.nextIdx[i])
		e.rel.dirty = true
	}
}

// jitteredRelease returns the actual release time of job k of task i:
// the nominal k·Period plus a deterministic draw from [0, Jitter].
func (e *Engine) jitteredRelease(task, k int) float64 {
	t := e.cfg.TaskSet.Tasks[task]
	nominal := float64(k) * t.Period
	if t.Jitter == 0 {
		return nominal
	}
	u := prng.Float64(prng.Hash3(e.cfg.JitterSeed^0x6a5d39e1, task, k))
	return nominal + t.Jitter*u
}

// --- System interface (the policy-facing read-only view) ---

func (e *Engine) TaskSet() *rtm.TaskSet { return e.cfg.TaskSet }

func (e *Engine) Processor() *cpu.Processor { return e.cfg.Processor }

func (e *Engine) Now() float64 { return e.t }

func (e *Engine) ActiveJobs() []*JobState { return e.active.jobs }

func (e *Engine) NextRelease() float64 {
	if len(e.nomNext) == 0 {
		return infinity
	}
	// min over tasks of NextReleaseOf(i): every term is >= e.t, and
	// the smallest nominal cursor decides whether the minimum is a
	// future instant or "right now".
	e.refreshReleaseIndex()
	if e.rel.minNom > e.t {
		return e.rel.minNom
	}
	return e.t
}

func (e *Engine) NextReleaseOf(task int) float64 {
	// Earliest *possible* next release from the scheduler's point of
	// view: the nominal instant, or "right now" if the nominal
	// instant has passed but the jittered arrival is still pending.
	// Policies must never observe the drawn arrival time itself —
	// a real scheduler would not know it either.
	if nom := e.nomNext[task]; nom > e.t {
		return nom
	}
	return e.t
}

func (e *Engine) NextDecisionBound() float64 {
	// Latest instant by which a release (and hence a scheduling
	// decision) is guaranteed, given pending releases within the
	// horizon: nominal + jitter bounds the drawn arrival.
	e.refreshReleaseIndex()
	return e.rel.minBound
}

// nextReleaseEvent returns the earliest actual (jittered) release the
// engine will perform, or +Inf if releases have ended.
func (e *Engine) nextReleaseEvent() float64 {
	e.refreshReleaseIndex()
	return e.rel.minEvent
}

// --- engine body ---

// Run drives the event loop to its end and returns the aggregate
// Result. Equivalent to calling Step until it reports false, then
// Finish.
func (e *Engine) Run() (Result, error) {
	for e.Step() {
	}
	return e.Finish()
}

// Step advances the simulation by one event-loop iteration — at most
// one scheduling decision plus the busy or idle interval to the next
// event — and reports whether the run can continue. It returns false
// once the run has ended, either naturally or on an error (see
// Finish). The instants between Step calls are the engine's
// checkpoint boundaries: Snapshot is valid exactly there.
func (e *Engine) Step() bool {
	if e.err != nil || e.ended {
		return false
	}
	if !e.began {
		e.began = true
		e.cfg.Policy.Reset(e)
		e.releaseDue()
	}
	if len(e.active.jobs) == 0 {
		nr := e.nextReleaseEvent()
		if math.IsInf(nr, 1) {
			// All work done; idle out the remaining horizon so
			// every run covers the same wall-clock span.
			if e.t < e.horizon {
				e.advanceIdle(e.horizon - e.t)
			}
			e.ended = true
			return false
		}
		e.advanceIdle(nr - e.t)
		e.releaseDue()
		return true
	}

	j := e.active.jobs[0]
	e.res.Decisions++
	s := e.cfg.Processor.Clamp(e.cfg.Policy.SelectSpeed(j))
	if !(s > 0) {
		e.err = fmt.Errorf("sim: policy %s selected non-positive speed %v at t=%v",
			e.cfg.Policy.Name(), s, e.t)
		return false
	}
	if stalled := e.setSpeed(s); stalled {
		// The transition consumed wall-clock time. If a release
		// landed inside the stall, loop back for a fresh
		// decision: the policies' deadline arguments rely on a
		// scheduling decision at *every* release, including
		// those hidden by the stall. Without a release the
		// chosen speed stands (re-deciding unconditionally would
		// let a pathological policy flip speeds forever without
		// executing anything).
		if e.releaseDue() {
			return true
		}
	}
	e.dispatch(j, s)

	finish := e.t + j.remainingActual()/s
	next := e.nextReleaseEvent()
	// Intra-job power-management point: a Repacer policy may
	// request an additional mid-job decision.
	if rp, ok := e.cfg.Policy.(Repacer); ok {
		if at := rp.NextCheck(j); at > e.t+1e-12 && at < next {
			next = at
		}
	}
	if finish <= next {
		e.advanceBusy(finish-e.t, s)
		e.complete(j)
		// A release can coincide with the completion instant.
		e.releaseDue()
		return true
	}
	e.advanceBusy(next-e.t, s)
	if j.remainingActual() <= 1e-12 {
		// The job's actual work ran out exactly at the event
		// boundary: complete it now, before admitting arrivals,
		// so its finish time is not deferred past this instant.
		e.complete(j)
	}
	e.releaseDue()
	return true
}

// Finish finalizes the aggregate Result once Step has reported false
// and returns it together with the run's error, if any. Calling it
// earlier returns the partial result accumulated so far (the
// checkpoint path never does; it snapshots instead).
func (e *Engine) Finish() (Result, error) {
	e.res.Time = math.Max(e.t, e.horizon)
	e.res.Energy = e.res.BusyEnergy + e.res.IdleEnergy + e.res.SwitchEnergy
	if inst, ok := e.cfg.Policy.(Instrumented); ok {
		e.res.PolicyCounters = inst.Counters()
	}
	return e.res, e.err
}

// releaseDue materializes every job whose (jittered) release time has
// arrived and reports whether any job was released. The horizon cuts
// off on nominal release times so the released job population is
// identical across jitter seeds.
func (e *Engine) releaseDue() bool {
	ts := e.cfg.TaskSet
	released := false
	for i := range ts.Tasks {
		for e.actualNext[i] <= e.t && e.nomNext[i] < e.horizon {
			j := e.newJob(i, e.nextIdx[i], e.actualNext[i])
			e.nextIdx[i]++
			e.nomNext[i] = float64(e.nextIdx[i]) * ts.Tasks[i].Period
			e.actualNext[i] = e.jitteredRelease(i, e.nextIdx[i])
			e.rel.dirty = true
			e.skipInactive(i)
			heap.Push(&e.active, j)
			e.res.JobsReleased++
			released = true
			e.cfg.Policy.OnRelease(j)
			if e.cfg.Observer != nil {
				e.cfg.Observer.ObserveRelease(e.t, j)
			}
		}
	}
	return released
}

func (e *Engine) newJob(task, idx int, release float64) *JobState {
	job := e.cfg.TaskSet.JobOf(task, idx)
	// Jitter shifts the actual release and the absolute deadline
	// with it; WCET and relative deadline are unchanged.
	job.AbsDeadline += release - job.Release
	job.Release = release
	aet := e.cfg.Workload.AET(task, idx, job.WCET)
	if aet > job.WCET {
		aet = job.WCET
	}
	if aet < 1e-9 {
		aet = 1e-9
	}
	job.AET = aet
	js := &JobState{Job: job, heapIndex: -1}
	if len(e.cfg.FixedPriorities) > 0 {
		js.Priority = float64(e.cfg.FixedPriorities[task])
	}
	return js
}

// setSpeed applies a speed setting, accounting for switch count,
// transition energy, and (when configured) the transition stall. It
// reports whether a stall consumed time.
func (e *Engine) setSpeed(s float64) bool {
	if e.speedSet && nearlyEqual(s, e.curSpeed) {
		return false
	}
	if !e.speedSet {
		// The initial setting at t=0 is not a transition.
		e.speedSet = true
		e.curSpeed = s
		return false
	}
	from := e.curSpeed
	e.curSpeed = s
	e.res.SpeedSwitches++
	e.res.SwitchEnergy += e.cfg.Processor.SwitchEnergy(from, s)
	if e.cfg.Observer != nil {
		e.cfg.Observer.ObserveSwitch(e.t, from, s)
	}
	if st := e.cfg.Processor.SwitchTime; st > 0 {
		// The PLL/regulator settles for SwitchTime; no work is
		// performed. Power during the stall is charged at the
		// higher of the two operating points (conservative).
		p := math.Max(e.cfg.Processor.BusyPower(from), e.cfg.Processor.BusyPower(s))
		e.res.SwitchEnergy += p * st
		e.t += st
		e.cfg.Policy.OnAdvance(st)
		return true
	}
	return false
}

func (e *Engine) dispatch(j *JobState, s float64) {
	if e.running != nil && e.running != j && !e.running.Done && e.running.Started {
		e.res.Preemptions++
	}
	j.Speed = s
	j.Started = true
	e.running = j
	if e.cfg.Observer != nil {
		e.cfg.Observer.ObserveDispatch(e.t, j, s)
	}
}

func (e *Engine) advanceBusy(dt, s float64) {
	if dt < 0 {
		dt = 0
	}
	j := e.active.jobs[0]
	j.Executed += dt * s
	if j.Executed > j.AET && j.Executed-j.AET < 1e-9 {
		j.Executed = j.AET // absorb rounding at completion
	}
	e.t += dt
	e.res.BusyEnergy += e.cfg.Processor.BusyPower(s) * dt
	e.res.WorkDone += dt * s
	e.res.SpeedTimeIntegral += dt * s
	e.cfg.Policy.OnAdvance(dt)
}

func (e *Engine) advanceIdle(dt float64) {
	if dt <= 0 {
		return
	}
	t0 := e.t
	e.t += dt
	proc := e.cfg.Processor
	if proc.CanSleep() && dt >= proc.BreakEvenIdle() {
		// The whole gap until the next release is known, so the
		// sleep decision is exact (a real kernel would use a
		// timeout; the difference is the sub-break-even tail).
		e.res.IdleEnergy += proc.WakeEnergy + proc.SleepPower*dt
		e.res.Sleeps++
		e.res.SleepTime += dt
	} else {
		e.res.IdleEnergy += proc.AwakeIdlePower() * dt
	}
	e.res.IdleTime += dt
	e.cfg.Policy.OnAdvance(dt)
	if e.cfg.Observer != nil {
		e.cfg.Observer.ObserveIdle(t0, e.t)
	}
}

func (e *Engine) complete(j *JobState) {
	heap.Remove(&e.active, j.heapIndex)
	j.Done = true
	j.Finish = e.t
	if e.running == j {
		e.running = nil
	}
	missed := e.t > j.AbsDeadline+Eps
	if missed {
		e.res.DeadlineMisses++
		if e.cfg.StrictDeadlines {
			e.err = fmt.Errorf("sim: policy %s: job %s missed deadline %v (finished %v)",
				e.cfg.Policy.Name(), j.ID(), j.AbsDeadline, e.t)
		}
	}
	e.res.JobsCompleted++
	e.cfg.Policy.OnComplete(j)
	if e.cfg.Observer != nil {
		e.cfg.Observer.ObserveComplete(e.t, j, missed)
	}
}

// nearlyEqual compares speeds with a tight relative tolerance so that
// repeated selections of the "same" speed do not count as switches.
func nearlyEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
