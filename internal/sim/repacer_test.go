package sim

import (
	"math"
	"testing"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/workload"
)

// twoPhase runs the first half of each job fast and the second half
// slow, switching at a self-scheduled power-management point.
type twoPhase struct {
	NopHooks
	sys      System
	job      *JobState
	switchAt float64
}

func (p *twoPhase) Name() string     { return "two-phase" }
func (p *twoPhase) Reset(sys System) { p.sys = sys; p.job = nil }

func (p *twoPhase) SelectSpeed(j *JobState) float64 {
	if p.job == j && p.sys.Now() >= p.switchAt-Eps {
		return 0.5 // second phase
	}
	// First phase: half the remaining worst case at full speed.
	p.job = j
	p.switchAt = p.sys.Now() + j.RemainingWCET()/2
	return 1
}

func (p *twoPhase) NextCheck(j *JobState) float64 {
	if p.job != j || p.sys.Now() >= p.switchAt-Eps {
		return math.Inf(1)
	}
	return p.switchAt
}

func TestRepacerMidJobSwitch(t *testing.T) {
	// One job, WCET 4, worst case: phase one runs 2 work in 2 time
	// at speed 1, phase two 2 work in 4 time at 0.5: finish at 6.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 4, Period: 10})
	res, err := Run(Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    &twoPhase{},
		Horizon:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatal("missed deadline")
	}
	if res.SpeedSwitches != 1 {
		t.Errorf("switches = %d, want exactly 1 mid-job switch", res.SpeedSwitches)
	}
	// Busy energy: 2·P(1) + 4·P(0.5) = 2 + 0.5 = 2.5.
	if math.Abs(res.BusyEnergy-2.5) > 1e-9 {
		t.Errorf("busy energy = %v, want 2.5", res.BusyEnergy)
	}
	// Idle 4 time units.
	if math.Abs(res.IdleTime-4) > 1e-9 {
		t.Errorf("idle = %v, want 4", res.IdleTime)
	}
}

func TestRepacerPastCheckIgnored(t *testing.T) {
	// A Repacer returning times at or before "now" must not stall
	// progress: the engine ignores them.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 2, Period: 8})
	res, err := Run(Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    &stuckRepacer{},
		Horizon:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != 1 {
		t.Errorf("completed %d jobs, want 1", res.JobsCompleted)
	}
}

type stuckRepacer struct {
	NopHooks
	sys System
}

func (p *stuckRepacer) Name() string                  { return "stuck" }
func (p *stuckRepacer) Reset(sys System)              { p.sys = sys }
func (p *stuckRepacer) SelectSpeed(*JobState) float64 { return 1 }
func (p *stuckRepacer) NextCheck(*JobState) float64   { return p.sys.Now() } // always "now"

func TestEngineDeterminism(t *testing.T) {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(6, 0.8, 9))
	run := func() Result {
		res, err := Run(Config{
			TaskSet:   ts,
			Processor: cpu.Continuous(0.1),
			Policy:    fixedSpeed{s: 0.9},
			Workload:  workload.Uniform{Lo: 0.3, Hi: 1, Seed: 9},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Energy != b.Energy || a.JobsCompleted != b.JobsCompleted ||
		a.SpeedSwitches != b.SpeedSwitches || a.Preemptions != b.Preemptions {
		t.Errorf("engine not deterministic:\n%+v\n%+v", a, b)
	}
}
