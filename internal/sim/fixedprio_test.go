package sim

import (
	"testing"
	"testing/quick"

	"dvsslack/internal/analysis"
	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
)

func TestFixedPriorityDispatchOrder(t *testing.T) {
	// Under RM the short-period task preempts; under EDF the same
	// pair would run by deadline. Construct a case where the orders
	// differ: T1 = (2, 10) released at 0 with deadline 10,
	// T2 = (2, 4). RM gives T2 priority; EDF also picks T2 (deadline
	// 4 < 10) — instead invert: priorities making the LONG task more
	// urgent shows fixed priorities are honored even against EDF
	// order.
	ts := rtm.NewTaskSet("x",
		rtm.Task{Name: "long", WCET: 2, Period: 10},
		rtm.Task{Name: "short", WCET: 1, Period: 4},
	)
	var first string
	obs := &funcObserver{dispatch: func(_ float64, j *JobState, _ float64) {
		if first == "" {
			first = ts.Tasks[j.TaskIndex].Name
		}
	}}
	_, err := Run(Config{
		TaskSet:         ts,
		Processor:       cpu.Continuous(0.1),
		Policy:          fixedSpeed{s: 1},
		Horizon:         20,
		Observer:        obs,
		FixedPriorities: []int{0, 1}, // long task is highest priority
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != "long" {
		t.Errorf("first dispatch = %q, want the high-priority long task", first)
	}
}

func TestFixedPriorityValidation(t *testing.T) {
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 1, Period: 4})
	_, err := Run(Config{
		TaskSet:         ts,
		Processor:       cpu.Continuous(0.1),
		Policy:          fixedSpeed{s: 1},
		FixedPriorities: []int{0, 1}, // wrong length
	})
	if err == nil {
		t.Error("mismatched FixedPriorities length should fail")
	}
}

// TestRTAMatchesSimulation is the cross-validation between the
// analytical substrate and the engine: RTA-schedulable sets never
// miss under RM at full speed, and the simulated worst-case response
// time never exceeds the analytical one.
func TestRTAMatchesSimulation(t *testing.T) {
	f := func(seed uint64, nRaw, uRaw uint8) bool {
		n := 1 + int(nRaw)%6
		u := 0.2 + 0.75*float64(uRaw)/255
		ts, err := rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
		if err != nil {
			return false
		}
		prios := analysis.RateMonotonicPriorities(ts)
		resp, ok := analysis.ResponseTimes(ts, prios)
		if !ok {
			return true // analysis rejects: nothing to check (RTA is exact but sim tie-breaks may differ marginally)
		}
		worst := make([]float64, ts.N())
		obs := &responseObserver{worst: worst}
		res, err := Run(Config{
			TaskSet:         ts,
			Processor:       cpu.Continuous(0.1),
			Policy:          fixedSpeed{s: 1},
			Observer:        obs,
			FixedPriorities: prios,
		})
		if err != nil || res.DeadlineMisses != 0 {
			t.Logf("seed=%d: err=%v misses=%d", seed, err, res.DeadlineMisses)
			return false
		}
		for i := range worst {
			if worst[i] > resp[i]+Eps {
				t.Logf("seed=%d task %d: simulated response %v > analytical %v",
					seed, i, worst[i], resp[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// responseObserver tracks per-task worst-case observed response time.
type responseObserver struct {
	worst []float64
}

func (o *responseObserver) ObserveRelease(float64, *JobState)           {}
func (o *responseObserver) ObserveDispatch(float64, *JobState, float64) {}
func (o *responseObserver) ObserveComplete(t float64, j *JobState, _ bool) {
	if r := t - j.Release; r > o.worst[j.TaskIndex] {
		o.worst[j.TaskIndex] = r
	}
}
func (o *responseObserver) ObserveIdle(float64, float64)  {}
func (o *responseObserver) ObserveSwitch(_, _, _ float64) {}
