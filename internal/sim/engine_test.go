package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/workload"
)

// fixedSpeed runs everything at a constant speed.
type fixedSpeed struct {
	NopHooks
	s float64
}

func (p fixedSpeed) Name() string                  { return "fixed" }
func (p fixedSpeed) Reset(System)                  {}
func (p fixedSpeed) SelectSpeed(*JobState) float64 { return p.s }

// alternating flips between two speeds on every decision to exercise
// switch accounting.
type alternating struct {
	NopHooks
	n int
}

func (p *alternating) Name() string { return "alternating" }
func (p *alternating) Reset(System) { p.n = 0 }
func (p *alternating) SelectSpeed(*JobState) float64 {
	p.n++
	if p.n%2 == 0 {
		return 0.5
	}
	return 1
}

func oneTask(c, period float64) *rtm.TaskSet {
	return rtm.NewTaskSet("one", rtm.Task{WCET: c, Period: period})
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleTaskFullSpeed(t *testing.T) {
	res := mustRun(t, Config{
		TaskSet:   oneTask(2, 4),
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: 1},
		Horizon:   8,
	})
	if res.JobsReleased != 2 || res.JobsCompleted != 2 {
		t.Errorf("jobs released/completed = %d/%d, want 2/2", res.JobsReleased, res.JobsCompleted)
	}
	if res.DeadlineMisses != 0 {
		t.Errorf("misses = %d", res.DeadlineMisses)
	}
	// Busy 4 time units at power 1, idle 4 at 0.05.
	if math.Abs(res.BusyEnergy-4) > 1e-9 {
		t.Errorf("busy energy = %v, want 4", res.BusyEnergy)
	}
	if math.Abs(res.IdleEnergy-0.2) > 1e-9 {
		t.Errorf("idle energy = %v, want 0.2", res.IdleEnergy)
	}
	if math.Abs(res.IdleTime-4) > 1e-9 {
		t.Errorf("idle time = %v, want 4", res.IdleTime)
	}
	if math.Abs(res.WorkDone-4) > 1e-9 {
		t.Errorf("work done = %v, want 4", res.WorkDone)
	}
	if res.Time != 8 {
		t.Errorf("time = %v, want 8", res.Time)
	}
}

func TestSingleTaskHalfSpeedExactDeadline(t *testing.T) {
	// C=2, T=4 at speed 0.5: each job takes exactly its whole
	// period; deadlines met with zero slack, no idle.
	res := mustRun(t, Config{
		TaskSet:   oneTask(2, 4),
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: 0.5},
		Horizon:   8,
	})
	if res.DeadlineMisses != 0 {
		t.Errorf("misses = %d, want 0 (exact fit)", res.DeadlineMisses)
	}
	if res.IdleTime > Eps {
		t.Errorf("idle time = %v, want 0", res.IdleTime)
	}
	// Power 0.125 for 8 units.
	if math.Abs(res.Energy-1) > 1e-9 {
		t.Errorf("energy = %v, want 1", res.Energy)
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	// U = 1 at speed 0.5: every job overruns.
	res := mustRun(t, Config{
		TaskSet:   oneTask(4, 4),
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: 0.5},
		Horizon:   8,
	})
	if res.DeadlineMisses == 0 {
		t.Error("expected deadline misses at half speed with U=1")
	}
}

func TestStrictDeadlinesErrors(t *testing.T) {
	_, err := Run(Config{
		TaskSet:         oneTask(4, 4),
		Processor:       cpu.Continuous(0.1),
		Policy:          fixedSpeed{s: 0.5},
		Horizon:         8,
		StrictDeadlines: true,
	})
	if err == nil || !strings.Contains(err.Error(), "missed deadline") {
		t.Errorf("want strict-deadline error, got %v", err)
	}
}

func TestEarlyCompletionUsesAET(t *testing.T) {
	res := mustRun(t, Config{
		TaskSet:   oneTask(2, 4),
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: 1},
		Workload:  workload.Constant{Frac: 0.5},
		Horizon:   8,
	})
	// Each job performs only 1 unit of work.
	if math.Abs(res.WorkDone-2) > 1e-9 {
		t.Errorf("work done = %v, want 2", res.WorkDone)
	}
	if math.Abs(res.IdleTime-6) > 1e-9 {
		t.Errorf("idle time = %v, want 6", res.IdleTime)
	}
}

func TestPreemptionCount(t *testing.T) {
	// B (C=1, T=4) preempts A (C=3, T=12) at full speed:
	// t=0: B#0 runs [0,1] (deadline 4 < 12), A runs [1,4],
	// B#1 arrives at 4 (deadline 8 < 12) and preempts A, ...
	ts := rtm.NewTaskSet("x",
		rtm.Task{Name: "A", WCET: 3, Period: 12},
		rtm.Task{Name: "B", WCET: 1, Period: 4},
	)
	res := mustRun(t, Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: 0.5}, // slow enough that A is still running at t=4
		Horizon:   12,
	})
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	if res.Preemptions == 0 {
		t.Error("expected at least one preemption")
	}
}

func TestEDFOrder(t *testing.T) {
	// Two tasks released together: the shorter deadline runs first.
	ts := rtm.NewTaskSet("x",
		rtm.Task{Name: "long", WCET: 2, Period: 20},
		rtm.Task{Name: "short", WCET: 2, Period: 5},
	)
	var order []string
	obs := &funcObserver{dispatch: func(_ float64, j *JobState, _ float64) {
		order = append(order, ts.Tasks[j.TaskIndex].Name)
	}}
	mustRun(t, Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: 1},
		Horizon:   5,
		Observer:  obs,
	})
	if len(order) == 0 || order[0] != "short" {
		t.Errorf("dispatch order = %v, want short first", order)
	}
}

// funcObserver adapts closures to the Observer interface.
type funcObserver struct {
	dispatch func(float64, *JobState, float64)
	swtch    func(float64, float64, float64)
	idle     func(float64, float64)
}

func (o *funcObserver) ObserveRelease(float64, *JobState) {}
func (o *funcObserver) ObserveDispatch(t float64, j *JobState, s float64) {
	if o.dispatch != nil {
		o.dispatch(t, j, s)
	}
}
func (o *funcObserver) ObserveComplete(float64, *JobState, bool) {}
func (o *funcObserver) ObserveIdle(t0, t1 float64) {
	if o.idle != nil {
		o.idle(t0, t1)
	}
}
func (o *funcObserver) ObserveSwitch(t, from, to float64) {
	if o.swtch != nil {
		o.swtch(t, from, to)
	}
}

func TestSpeedSwitchAccounting(t *testing.T) {
	proc := cpu.Continuous(0.1)
	proc.SwitchEnergyCoeff = 1
	res := mustRun(t, Config{
		TaskSet:   oneTask(2, 4),
		Processor: proc,
		Policy:    &alternating{},
		Horizon:   16,
	})
	if res.SpeedSwitches == 0 {
		t.Fatal("alternating policy should switch speeds")
	}
	if res.SwitchEnergy <= 0 {
		t.Error("switch energy should accrue")
	}
	// Cubic voltage: |1 - 0.25| = 0.75 per switch.
	want := 0.75 * float64(res.SpeedSwitches)
	if math.Abs(res.SwitchEnergy-want) > 1e-9 {
		t.Errorf("switch energy = %v, want %v", res.SwitchEnergy, want)
	}
}

func TestSwitchStallConsumesTime(t *testing.T) {
	proc := cpu.Continuous(0.1)
	proc.SwitchTime = 0.25
	res := mustRun(t, Config{
		TaskSet:   oneTask(1, 8), // plenty of slack for the stalls
		Processor: proc,
		Policy:    &alternating{},
		Horizon:   16,
	})
	if res.SpeedSwitches == 0 {
		t.Fatal("expected switches")
	}
	if res.SwitchEnergy <= 0 {
		t.Error("stall time should be charged as switch energy")
	}
	if res.DeadlineMisses != 0 {
		t.Errorf("misses = %d with ample slack", res.DeadlineMisses)
	}
}

func TestFirstSpeedSettingIsNotASwitch(t *testing.T) {
	res := mustRun(t, Config{
		TaskSet:   oneTask(2, 4),
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: 0.7},
		Horizon:   16,
	})
	if res.SpeedSwitches != 0 {
		t.Errorf("constant policy recorded %d switches", res.SpeedSwitches)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{TaskSet: oneTask(1, 4), Processor: cpu.Continuous(0.1), Policy: fixedSpeed{s: 1}}
	cases := []struct {
		name string
		mut  func(Config) Config
	}{
		{"nil taskset", func(c Config) Config { c.TaskSet = nil; return c }},
		{"nil processor", func(c Config) Config { c.Processor = nil; return c }},
		{"nil policy", func(c Config) Config { c.Policy = nil; return c }},
		{"zero smin continuous", func(c Config) Config { c.Processor = cpu.Continuous(0); return c }},
		{"negative horizon", func(c Config) Config { c.Horizon = -1; return c }},
		{"invalid taskset", func(c Config) Config {
			c.TaskSet = &rtm.TaskSet{Tasks: []rtm.Task{{WCET: 5, Period: 2}}}
			return c
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Run(c.mut(good)); err == nil {
				t.Error("want error")
			}
		})
	}
	if _, err := Run(good); err != nil {
		t.Errorf("valid config failed: %v", err)
	}
}

func TestNonPositivePolicySpeed(t *testing.T) {
	// A policy returning NaN combined with SMin 0 cannot happen
	// (validated), but a discrete processor always clamps up, so
	// engine errors only on the truly impossible case. Exercise the
	// clamp path with a negative request.
	res := mustRun(t, Config{
		TaskSet:   oneTask(1, 4),
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: -5},
		Horizon:   8,
	})
	// Clamped to SMin: still runs.
	if res.JobsCompleted == 0 {
		t.Error("clamped speed should still execute jobs")
	}
}

func TestHorizonDefaultsToHyperperiod(t *testing.T) {
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 4},
		rtm.Task{WCET: 1, Period: 6},
	)
	res := mustRun(t, Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: 1},
	})
	if res.Time != 12 {
		t.Errorf("default horizon = %v, want hyperperiod 12", res.Time)
	}
	// 12/4 + 12/6 = 5 jobs.
	if res.JobsReleased != 5 {
		t.Errorf("jobs released = %d, want 5", res.JobsReleased)
	}
}

func TestEnergyDecomposition(t *testing.T) {
	proc := cpu.Continuous(0.1)
	proc.SwitchEnergyCoeff = 0.5
	res := mustRun(t, Config{
		TaskSet:   oneTask(2, 5),
		Processor: proc,
		Policy:    &alternating{},
		Horizon:   20,
	})
	sum := res.BusyEnergy + res.IdleEnergy + res.SwitchEnergy
	if math.Abs(res.Energy-sum) > 1e-9 {
		t.Errorf("energy %v != components %v", res.Energy, sum)
	}
}

func TestWorkConservation(t *testing.T) {
	// Total executed work equals the sum of AETs of completed jobs.
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(5, 0.8, 3))
	gen := workload.Uniform{Lo: 0.3, Hi: 1, Seed: 3}
	res := mustRun(t, Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    fixedSpeed{s: 1},
		Workload:  gen,
	})
	var want float64
	horizon := DefaultHorizon(ts)
	for i, task := range ts.Tasks {
		for k := 0; float64(k)*task.Period < horizon; k++ {
			want += gen.AET(i, k, task.WCET)
		}
	}
	if math.Abs(res.WorkDone-want) > 1e-6 {
		t.Errorf("work done = %v, want %v", res.WorkDone, want)
	}
	if res.JobsCompleted != res.JobsReleased {
		t.Errorf("completed %d != released %d", res.JobsCompleted, res.JobsReleased)
	}
}

// Property: full-speed EDF meets every deadline for any feasible
// (U <= 1) generated task set under any workload — the Liu & Layland
// optimality of EDF, exercised through the whole engine.
func TestEDFFullSpeedNeverMisses(t *testing.T) {
	f := func(seed uint64, nRaw, uRaw uint8) bool {
		n := 1 + int(nRaw)%10
		u := 0.1 + 0.9*float64(uRaw)/255
		ts, err := rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
		if err != nil {
			return false
		}
		res, err := Run(Config{
			TaskSet:   ts,
			Processor: cpu.Continuous(0.1),
			Policy:    fixedSpeed{s: 1},
			Workload:  workload.Uniform{Lo: 0.2, Hi: 1, Seed: seed},
		})
		return err == nil && res.DeadlineMisses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: running at constant speed U (static EDF) meets every
// deadline for implicit-deadline sets even in the worst case.
func TestStaticSpeedUNeverMisses(t *testing.T) {
	f := func(seed uint64, nRaw, uRaw uint8) bool {
		n := 1 + int(nRaw)%8
		u := 0.2 + 0.8*float64(uRaw)/255
		ts, err := rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
		if err != nil {
			return false
		}
		res, err := Run(Config{
			TaskSet:   ts,
			Processor: cpu.Continuous(0.05),
			Policy:    fixedSpeed{s: ts.Utilization()},
		})
		return err == nil && res.DeadlineMisses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestJobStateAccessors(t *testing.T) {
	j := &JobState{Job: rtm.Job{WCET: 5, AET: 3, AbsDeadline: 20}, Executed: 1}
	if r := j.RemainingWCET(); r != 4 {
		t.Errorf("RemainingWCET = %v, want 4", r)
	}
	if r := j.remainingActual(); r != 2 {
		t.Errorf("remainingActual = %v, want 2", r)
	}
	if l := j.Laxity(10); l != 6 {
		t.Errorf("Laxity = %v, want 6", l)
	}
	j.Executed = 10
	if j.RemainingWCET() != 0 || j.remainingActual() != 0 {
		t.Error("overrun remainders should clamp at zero")
	}
}
