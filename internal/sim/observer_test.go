package sim

import (
	"fmt"
	"testing"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/workload"
)

// contractObserver asserts the ordering contract the engine promises
// Observer implementations (and on which internal/audit and
// internal/trace rely):
//
//   - a job is released exactly once, before any dispatch or
//     completion of that job, and never before its release time;
//   - a job completes at most once, only after being dispatched, and
//     never travels back in time;
//   - release/dispatch/complete callbacks arrive in non-decreasing
//     time order;
//   - idle intervals are well-formed (t0 < t1), mutually
//     non-overlapping, and no dispatch lands strictly inside one;
//   - switch callbacks report an actual speed change.
type contractObserver struct {
	t *testing.T

	released   map[[2]int]float64 // job -> release callback time
	dispatched map[[2]int]int
	completed  map[[2]int]bool
	lastT      float64 // latest job-event callback time
	idle       [][2]float64
	dispatches []float64
}

func newContractObserver(t *testing.T) *contractObserver {
	return &contractObserver{
		t:          t,
		released:   make(map[[2]int]float64),
		dispatched: make(map[[2]int]int),
		completed:  make(map[[2]int]bool),
	}
}

func key(j *JobState) [2]int { return [2]int{j.TaskIndex, j.Index} }

func id(j *JobState) string { return fmt.Sprintf("T%d#%d", j.TaskIndex+1, j.Index) }

func (o *contractObserver) step(t float64, what string) {
	if t < o.lastT-Eps {
		o.t.Errorf("%s at t=%v after callback at t=%v: time went backwards", what, t, o.lastT)
	}
	if t > o.lastT {
		o.lastT = t
	}
}

func (o *contractObserver) ObserveRelease(t float64, j *JobState) {
	o.step(t, "release")
	k := key(j)
	if prev, ok := o.released[k]; ok {
		o.t.Errorf("%s released twice (t=%v and t=%v)", id(j), prev, t)
	}
	if t < j.Release-Eps {
		o.t.Errorf("%s release observed at t=%v before its release time %v", id(j), t, j.Release)
	}
	o.released[k] = t
}

func (o *contractObserver) ObserveDispatch(t float64, j *JobState, speed float64) {
	o.step(t, "dispatch")
	k := key(j)
	rel, ok := o.released[k]
	if !ok {
		o.t.Errorf("%s dispatched at t=%v without a prior release callback", id(j), t)
	} else if t < rel-Eps {
		o.t.Errorf("%s dispatched at t=%v before its release callback at t=%v", id(j), t, rel)
	}
	if o.completed[k] {
		o.t.Errorf("%s dispatched at t=%v after completing", id(j), t)
	}
	if speed <= 0 {
		o.t.Errorf("%s dispatched at non-positive speed %v", id(j), speed)
	}
	o.dispatched[k]++
	o.dispatches = append(o.dispatches, t)
}

func (o *contractObserver) ObserveComplete(t float64, j *JobState, missed bool) {
	o.step(t, "complete")
	k := key(j)
	if o.dispatched[k] == 0 {
		o.t.Errorf("%s completed at t=%v without ever being dispatched", id(j), t)
	}
	if o.completed[k] {
		o.t.Errorf("%s completed twice", id(j))
	}
	o.completed[k] = true
}

func (o *contractObserver) ObserveIdle(t0, t1 float64) {
	// Idle is reported at the end of the interval, so t0 is in the
	// past relative to o.lastT; only t1 joins the monotonic stream.
	o.step(t1, "idle-end")
	if !(t0 < t1) {
		o.t.Errorf("idle interval [%v, %v) is empty or inverted", t0, t1)
	}
	o.idle = append(o.idle, [2]float64{t0, t1})
}

func (o *contractObserver) ObserveSwitch(t, from, to float64) {
	if from == to {
		o.t.Errorf("switch callback at t=%v with unchanged speed %v", t, from)
	}
}

// finish runs the checks that need the whole stream.
func (o *contractObserver) finish(res Result) {
	for i := 1; i < len(o.idle); i++ {
		if o.idle[i][0] < o.idle[i-1][1]-Eps {
			o.t.Errorf("idle intervals overlap: [%v,%v) then [%v,%v)",
				o.idle[i-1][0], o.idle[i-1][1], o.idle[i][0], o.idle[i][1])
		}
	}
	for _, d := range o.dispatches {
		for _, iv := range o.idle {
			if d > iv[0]+Eps && d < iv[1]-Eps {
				o.t.Errorf("dispatch at t=%v inside idle interval [%v, %v)", d, iv[0], iv[1])
			}
		}
	}
	if got := len(o.released); got != res.JobsReleased {
		o.t.Errorf("observed %d releases, result says %d", got, res.JobsReleased)
	}
	done := 0
	for _, c := range o.completed {
		if c {
			done++
		}
	}
	if done != res.JobsCompleted {
		o.t.Errorf("observed %d completions, result says %d", done, res.JobsCompleted)
	}
}

// TestObserverContract drives the engine through configurations that
// exercise every callback — preemption, idle gaps, speed switches
// with stalls, early completion — and asserts the ordering contract
// documented on sim.Observer.
func TestObserverContract(t *testing.T) {
	discrete := cpu.UniformLevels(4)
	discrete.SwitchTime = 0.1
	cases := []struct {
		name string
		cfg  Config
	}{
		{"fixed-full-speed", Config{
			TaskSet:   rtm.MustGenerate(rtm.DefaultGenConfig(5, 0.6, 9)),
			Processor: cpu.Continuous(0.1),
			Policy:    fixedSpeed{s: 1},
			Workload:  workload.Uniform{Lo: 0.4, Hi: 1, Seed: 2},
		}},
		{"alternating-with-stalls", Config{
			TaskSet:   rtm.MustGenerate(rtm.DefaultGenConfig(4, 0.5, 12)),
			Processor: discrete,
			Policy:    &alternating{},
			Workload:  workload.Uniform{Lo: 0.5, Hi: 1, Seed: 3},
		}},
		{"slow-speed-with-misses", Config{
			TaskSet:   oneTask(4, 4),
			Processor: cpu.Continuous(0.1),
			Policy:    fixedSpeed{s: 0.5},
			Horizon:   12,
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			obs := newContractObserver(t)
			c.cfg.Observer = obs
			res, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			obs.finish(res)
			if len(obs.dispatches) == 0 {
				t.Error("no dispatches observed")
			}
		})
	}
}
