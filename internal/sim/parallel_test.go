package sim_test

import (
	"reflect"
	"sync"
	"testing"

	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// TestParallelRunsMatchSequential asserts the concurrency contract the
// dvsd worker pool is built on: simulations constructed from the same
// inputs produce bit-identical results whether they run sequentially
// or in parallel goroutines sharing the task set and workload
// generator values. Run with -race, it also proves no hidden shared
// mutable state. Each run gets a fresh policy and processor —
// both are mutable; only rtm.TaskSet and workload generators may be
// shared.
func TestParallelRunsMatchSequential(t *testing.T) {
	policies := map[string]func() sim.Policy{
		"nondvs": func() sim.Policy { return &dvs.NonDVS{} },
		"cc":     func() sim.Policy { return &dvs.CCEDF{} },
		"la":     func() sim.Policy { return &dvs.LAEDF{} },
		"dra":    func() sim.Policy { return &dvs.DRA{} },
		"lpshe":  func() sim.Policy { return core.NewLpSHE() },
	}

	type spec struct {
		ts     *rtm.TaskSet // shared across concurrent runs on purpose
		gen    workload.Generator
		policy string
	}
	var specs []spec
	shared := rtm.Quickstart()
	for seed := uint64(0); seed < 8; seed++ {
		gen := workload.Uniform{Lo: 0.4, Hi: 1, Seed: seed}
		for name := range policies {
			specs = append(specs, spec{ts: shared, gen: gen, policy: name})
		}
	}

	run := func(s spec) sim.Result {
		t.Helper()
		res, err := sim.Run(sim.Config{
			TaskSet:   s.ts,
			Processor: cpu.Continuous(0.1),
			Policy:    policies[s.policy](),
			Workload:  s.gen,
		})
		if err != nil {
			t.Errorf("%s: %v", s.policy, err)
		}
		return res
	}

	sequential := make([]sim.Result, len(specs))
	for i, s := range specs {
		sequential[i] = run(s)
	}

	parallel := make([]sim.Result, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s spec) {
			defer wg.Done()
			parallel[i] = run(s)
		}(i, s)
	}
	wg.Wait()

	for i := range specs {
		if !reflect.DeepEqual(sequential[i], parallel[i]) {
			t.Errorf("spec %d (%s): parallel result differs from sequential:\n seq %+v\n par %+v",
				i, specs[i].policy, sequential[i], parallel[i])
		}
	}
}
