package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		counts := make([]atomic.Int32, n)
		if err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	ran := false
	if err := ForEach(4, 0, func(int) error { ran = true; return nil }); err != nil || ran {
		t.Errorf("n=0: err=%v ran=%v", err, ran)
	}
	if err := ForEach(4, -5, func(int) error { ran = true; return nil }); err != nil || ran {
		t.Errorf("n<0: err=%v ran=%v", err, ran)
	}
}

// TestForEachLowestIndexError: with several failing indices the
// returned error is deterministically the lowest dispatched failure.
func TestForEachLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 3, 8} {
		err := ForEach(workers, 50, func(i int) error {
			switch i {
			case 7:
				return errA
			case 30:
				return errB
			}
			return nil
		})
		// Index 7 always dispatches before the failure at 30 can stop
		// the loop... not necessarily under >1 workers, but whichever
		// subset failed, the lowest failed index must be reported, and
		// index 7 is dispatched before index 30 by the monotone
		// counter, so errA must win whenever both ran.
		if err == nil {
			t.Fatalf("workers=%d: expected an error", workers)
		}
		if err != errA && err != errB {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if workers == 1 && err != errA {
			t.Fatalf("serial: want errA, got %v", err)
		}
	}
}

// TestForEachStopsDispatchingAfterError: once a call fails, the
// number of additional dispatches is bounded by the worker count.
func TestForEachStopsDispatchingAfterError(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	_ = ForEach(2, 10_000, func(i int) error {
		ran.Add(1)
		return boom
	})
	if n := ran.Load(); n > 4 {
		t.Errorf("ran %d calls after first failure; want <= workers+in-flight", n)
	}
}
