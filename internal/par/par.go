// Package par provides the bounded-parallelism primitive shared by
// the measurement pipeline: the experiment harness fans (point, seed,
// policy) cells out over it, cmd/dvsexp threads its -workers flag
// into it, and the dvsd job runner uses it instead of hand-rolling a
// semaphore/WaitGroup fan-out.
//
// The contract is deliberately narrow: every index is dispatched to
// exactly one call of fn, calls run on at most `workers` goroutines,
// and ForEach returns only after every dispatched call has returned.
// Nothing about completion *order* is promised — callers that need
// deterministic output must write results into index i of a
// pre-sized slice and merge in index order after ForEach returns
// (see internal/experiment/parallel.go for the canonical pattern).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: n when positive, otherwise
// GOMAXPROCS (the default for CPU-bound simulation work).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines (0 or negative selects GOMAXPROCS) and blocks until all
// dispatched calls return.
//
// Error handling mirrors a serial loop as closely as parallelism
// allows: after any call fails, no *new* indices are dispatched
// (in-flight calls finish), and the returned error is the one from
// the lowest failed index — deterministic regardless of goroutine
// scheduling. workers <= 1 (or n <= 1) degenerates to exactly the
// serial loop, including its early return.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
