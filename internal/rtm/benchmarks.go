package rtm

// Embedded benchmark task sets.
//
// The DVS-EDF literature of the paper's era (Kim/Kim/Min DATE 2002 and
// the companion SimDVS comparisons) evaluates on three embedded
// control applications: a CNC machine controller, the Generic
// Avionics Platform (GAP), and a videophone application. The original
// parameter tables are not available in this session, so the task sets
// below are *representative re-specifications* assembled from the
// commonly cited descriptions of those workloads (periods in
// milliseconds, worst-case execution times sized to plausible
// utilizations: CNC ≈ 0.76, avionics ≈ 0.59, videophone ≈ 0.39).
// Experiments that need a specific worst-case utilization rescale the
// WCETs with ScaleToUtilization, so only the period structure and the
// relative WCET mix matter for the reproduced trends. This
// substitution is recorded in DESIGN.md §5.

// CNC returns a representative CNC machine-controller task set
// (8 tasks, tight millisecond periods, worst-case utilization ≈ 0.76).
func CNC() *TaskSet {
	return NewTaskSet("cnc",
		Task{Name: "x_axis_ctrl", WCET: 0.55, Period: 2.4},
		Task{Name: "y_axis_ctrl", WCET: 0.55, Period: 2.4},
		Task{Name: "spindle_ctrl", WCET: 0.35, Period: 4.8},
		Task{Name: "interp_x", WCET: 0.70, Period: 9.6},
		Task{Name: "interp_y", WCET: 0.70, Period: 9.6},
		Task{Name: "servo_status", WCET: 0.30, Period: 9.6},
		Task{Name: "cmd_parse", WCET: 1.20, Period: 38.4},
		Task{Name: "display_refresh", WCET: 1.50, Period: 76.8},
	)
}

// Avionics returns a representative Generic Avionics Platform task
// set (17 tasks, worst-case utilization ≈ 0.59).
func Avionics() *TaskSet {
	return NewTaskSet("avionics",
		Task{Name: "weapon_release", WCET: 0.80, Period: 10},
		Task{Name: "radar_tracking", WCET: 2.00, Period: 40},
		Task{Name: "target_tracking", WCET: 4.00, Period: 40},
		Task{Name: "aircraft_flight_data", WCET: 4.00, Period: 50},
		Task{Name: "display_graphic", WCET: 6.00, Period: 80},
		Task{Name: "display_hook_update", WCET: 4.00, Period: 80},
		Task{Name: "tracking_filter", WCET: 1.60, Period: 100},
		Task{Name: "nav_update", WCET: 6.40, Period: 100},
		Task{Name: "display_stores_update", WCET: 1.00, Period: 200},
		Task{Name: "display_keyset", WCET: 1.00, Period: 200},
		Task{Name: "display_stat_update", WCET: 2.00, Period: 200},
		Task{Name: "bet_e_status", WCET: 1.00, Period: 1000},
		Task{Name: "nav_steering_cmds", WCET: 3.00, Period: 200},
		Task{Name: "display_flight_data", WCET: 5.20, Period: 200},
		Task{Name: "display_trackball", WCET: 1.00, Period: 200},
		Task{Name: "weapon_protocol", WCET: 1.00, Period: 200},
		Task{Name: "nav_status", WCET: 1.00, Period: 1000},
	)
}

// Videophone returns a representative videophone task set (4 tasks:
// video encode/decode, audio encode/decode; worst-case utilization
// ≈ 0.4).
func Videophone() *TaskSet {
	return NewTaskSet("videophone",
		Task{Name: "video_encode", WCET: 9.0, Period: 66},
		Task{Name: "video_decode", WCET: 6.0, Period: 66},
		Task{Name: "audio_encode", WCET: 2.4, Period: 24},
		Task{Name: "audio_decode", WCET: 1.6, Period: 24},
	)
}

// Benchmarks returns all embedded benchmark task sets keyed by name.
func Benchmarks() []*TaskSet {
	return []*TaskSet{CNC(), Avionics(), Videophone()}
}

// Quickstart is the five-task example set used by the quickstart
// example and many tests (periods chosen to give a small hyperperiod
// of 120 time units and worst-case utilization 0.75).
func Quickstart() *TaskSet {
	return NewTaskSet("quickstart",
		Task{Name: "sensor", WCET: 1, Period: 4},
		Task{Name: "control", WCET: 2, Period: 12},
		Task{Name: "telemetry", WCET: 2, Period: 15},
		Task{Name: "logging", WCET: 3, Period: 30},
		Task{Name: "housekeeping", WCET: 4, Period: 40},
	)
}
