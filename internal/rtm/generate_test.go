package rtm

import (
	"math"
	"testing"
	"testing/quick"

	"dvsslack/internal/prng"
)

func TestGenerateHitsUtilization(t *testing.T) {
	for _, u := range []float64{0.1, 0.5, 0.9, 1.0} {
		for seed := uint64(0); seed < 10; seed++ {
			ts, err := Generate(DefaultGenConfig(8, u, seed))
			if err != nil {
				t.Fatalf("u=%v seed=%d: %v", u, seed, err)
			}
			got := ts.Utilization()
			// The MinWCET floor can force a small overshoot at tiny
			// utilizations; allow 2%.
			if math.Abs(got-u) > 0.02*u+1e-9 {
				t.Errorf("u=%v seed=%d: generated utilization %v", u, seed, got)
			}
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(GenConfig{N: 0, Utilization: 0.5}); err == nil {
		t.Error("N=0 should fail")
	}
	if _, err := Generate(GenConfig{N: 4, Utilization: 0}); err == nil {
		t.Error("U=0 should fail")
	}
	if _, err := Generate(GenConfig{N: 4, Utilization: 1.5}); err == nil {
		t.Error("U>1 should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(DefaultGenConfig(6, 0.7, 99))
	b := MustGenerate(DefaultGenConfig(6, 0.7, 99))
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("same seed, different sizes")
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("same seed, task %d differs: %v vs %v", i, a.Tasks[i], b.Tasks[i])
		}
	}
	c := MustGenerate(DefaultGenConfig(6, 0.7, 100))
	same := true
	for i := range a.Tasks {
		if a.Tasks[i] != c.Tasks[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical task sets")
	}
}

func TestGeneratePeriodsFromPool(t *testing.T) {
	pool := []float64{7, 13}
	ts := MustGenerate(GenConfig{N: 20, Utilization: 0.5, Periods: pool, Seed: 1})
	for _, task := range ts.Tasks {
		if task.Period != 7 && task.Period != 13 {
			t.Errorf("period %v not from pool", task.Period)
		}
	}
}

func TestGenerateTasksFeasible(t *testing.T) {
	f := func(seed uint64, nRaw uint8, uRaw uint16) bool {
		n := 1 + int(nRaw)%16
		u := 0.05 + 0.95*float64(uRaw)/65535
		ts, err := Generate(DefaultGenConfig(n, u, seed))
		if err != nil {
			return false
		}
		if ts.Utilization() > 1+1e-9 {
			return false
		}
		for _, task := range ts.Tasks {
			if task.WCET <= 0 || task.WCET > task.Period {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUUniFastSumsAndUniformity(t *testing.T) {
	src := prng.New(3)
	for trial := 0; trial < 50; trial++ {
		u := uunifast(5, 0.8, src)
		var sum float64
		for _, v := range u {
			if v < 0 {
				t.Fatalf("negative utilization share %v", v)
			}
			sum += v
		}
		if math.Abs(sum-0.8) > 1e-9 {
			t.Fatalf("shares sum to %v, want 0.8", sum)
		}
	}
	// Marginal mean of each share should be u/n.
	const trials = 20000
	means := make([]float64, 4)
	for trial := 0; trial < trials; trial++ {
		u := uunifast(4, 1.0, src)
		for i, v := range u {
			means[i] += v
		}
	}
	for i := range means {
		means[i] /= trials
		if math.Abs(means[i]-0.25) > 0.01 {
			t.Errorf("share %d mean %v, want 0.25", i, means[i])
		}
	}
}

func TestBenchmarkTaskSets(t *testing.T) {
	for _, ts := range Benchmarks() {
		if err := ts.Validate(); err != nil {
			t.Errorf("%s: %v", ts.Name, err)
		}
		if u := ts.Utilization(); u <= 0 || u > 1 {
			t.Errorf("%s: utilization %v out of (0,1]", ts.Name, u)
		}
		if _, ok := ts.Hyperperiod(); !ok {
			t.Errorf("%s: hyperperiod not computable", ts.Name)
		}
	}
	if CNC().N() != 8 {
		t.Errorf("CNC should have 8 tasks, has %d", CNC().N())
	}
	if Avionics().N() != 17 {
		t.Errorf("avionics should have 17 tasks, has %d", Avionics().N())
	}
	if Videophone().N() != 4 {
		t.Errorf("videophone should have 4 tasks, has %d", Videophone().N())
	}
}

func TestQuickstartTaskSet(t *testing.T) {
	ts := Quickstart()
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	h, ok := ts.Hyperperiod()
	if !ok || h != 120 {
		t.Errorf("quickstart hyperperiod = %v (ok=%v), want 120", h, ok)
	}
	if u := ts.Utilization(); math.Abs(u-0.75) > 1e-9 {
		t.Errorf("quickstart utilization = %v, want 0.75", u)
	}
}
