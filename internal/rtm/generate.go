package rtm

import (
	"fmt"
	"math"

	"dvsslack/internal/prng"
)

// GenConfig controls synthetic task-set generation for the
// evaluation. The defaults (via DefaultGenConfig) match the
// experimental setup used throughout EXPERIMENTS.md.
type GenConfig struct {
	// N is the number of tasks (required, > 0).
	N int
	// Utilization is the target worst-case utilization sum(Ci/Ti),
	// split across tasks with UUniFast. Must be in (0, 1].
	Utilization float64
	// Periods is the pool of candidate periods; each task draws one
	// uniformly (with replacement). If empty, DefaultPeriods is
	// used. Integer-valued periods keep hyperperiods computable.
	Periods []float64
	// MinWCET floors each generated WCET so no task degenerates to
	// zero work (default 0.01 time units).
	MinWCET float64
	// Seed selects the pseudo-random stream.
	Seed uint64
}

// DefaultPeriods is the period pool used by the evaluation: one
// decade of integer periods with several common divisors, keeping
// hyperperiods small enough for exact slack analysis.
var DefaultPeriods = []float64{10, 20, 25, 40, 50, 80, 100, 125, 200, 250, 400, 500, 800, 1000}

// DefaultGenConfig returns the standard generator configuration of
// the evaluation harness.
func DefaultGenConfig(n int, u float64, seed uint64) GenConfig {
	return GenConfig{N: n, Utilization: u, Seed: seed}
}

// Generate produces a random periodic task set with the requested
// total worst-case utilization. Utilizations are split with UUniFast
// (Bini & Buttazzo), which samples uniformly from the simplex of
// utilization vectors, and periods are drawn from the configured pool.
func Generate(cfg GenConfig) (*TaskSet, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("rtm: Generate: N must be positive, got %d", cfg.N)
	}
	if !(cfg.Utilization > 0) || cfg.Utilization > 1 {
		return nil, fmt.Errorf("rtm: Generate: utilization must be in (0,1], got %v", cfg.Utilization)
	}
	periods := cfg.Periods
	if len(periods) == 0 {
		periods = DefaultPeriods
	}
	minWCET := cfg.MinWCET
	if minWCET == 0 {
		minWCET = 0.01
	}
	src := prng.New(cfg.Seed)

	// UUniFast: generate n-1 ordered uniform breakpoints on the
	// simplex by successive Beta sampling.
	utils := uunifast(cfg.N, cfg.Utilization, src)

	ts := &TaskSet{Name: fmt.Sprintf("gen(n=%d,u=%.2f,seed=%d)", cfg.N, cfg.Utilization, cfg.Seed)}
	for i := 0; i < cfg.N; i++ {
		p := periods[src.Intn(len(periods))]
		c := utils[i] * p
		if c < minWCET {
			c = minWCET
		}
		if c > p {
			c = p // cap so a single task never exceeds full utilization
		}
		ts.Tasks = append(ts.Tasks, Task{Name: fmt.Sprintf("T%d", i+1), WCET: c, Period: p})
	}
	// Flooring can drift total utilization a little; rescale to hit
	// the target exactly (keeping the floor only when it does not
	// break feasibility).
	if got := ts.Utilization(); got > 0 && math.Abs(got-cfg.Utilization) > 1e-12 {
		scaled := ts.ScaleToUtilization(cfg.Utilization)
		ok := true
		for _, t := range scaled.Tasks {
			if t.WCET > t.Period {
				ok = false
				break
			}
		}
		if ok {
			scaled.Name = ts.Name
			ts = scaled
		}
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return ts, nil
}

// MustGenerate is Generate that panics on error, for tests and
// examples with known-good configurations.
func MustGenerate(cfg GenConfig) *TaskSet {
	ts, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ts
}

// uunifast splits total utilization u across n tasks uniformly at
// random over the simplex (Bini & Buttazzo, "Measuring the
// performance of schedulability tests", 2005).
func uunifast(n int, u float64, src *prng.Source) []float64 {
	utils := make([]float64, n)
	sum := u
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(src.Float64(), 1/float64(n-1-i))
		utils[i] = sum - next
		sum = next
	}
	utils[n-1] = sum
	return utils
}
