package rtm

import (
	"encoding/json"
	"fmt"
	"io"
)

// taskSetJSON is the on-disk representation of a TaskSet.
type taskSetJSON struct {
	Name  string     `json:"name,omitempty"`
	Tasks []taskJSON `json:"tasks"`
}

type taskJSON struct {
	Name     string  `json:"name,omitempty"`
	WCET     float64 `json:"wcet"`
	Period   float64 `json:"period"`
	Deadline float64 `json:"deadline,omitempty"`
	Jitter   float64 `json:"jitter,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (ts *TaskSet) MarshalJSON() ([]byte, error) {
	out := taskSetJSON{Name: ts.Name}
	for _, t := range ts.Tasks {
		out.Tasks = append(out.Tasks, taskJSON(t))
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded
// set.
func (ts *TaskSet) UnmarshalJSON(data []byte) error {
	var in taskSetJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("rtm: decoding task set: %w", err)
	}
	ts.Name = in.Name
	ts.Tasks = ts.Tasks[:0]
	for _, t := range in.Tasks {
		ts.Tasks = append(ts.Tasks, Task(t))
	}
	return ts.Validate()
}

// WriteJSON writes the task set as indented JSON.
func (ts *TaskSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts)
}

// ReadJSON decodes and validates a task set from r.
func ReadJSON(r io.Reader) (*TaskSet, error) {
	var ts TaskSet
	if err := json.NewDecoder(r).Decode(&ts); err != nil {
		return nil, err
	}
	return &ts, nil
}
