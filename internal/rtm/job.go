package rtm

import "fmt"

// Job is one released instance of a periodic task.
type Job struct {
	// TaskIndex is the position of the owning task in its TaskSet.
	TaskIndex int
	// Index is the zero-based release count: job k of task i is
	// released at k*Period.
	Index int
	// Release is the absolute release time.
	Release float64
	// AbsDeadline is the absolute deadline (Release + relative
	// deadline).
	AbsDeadline float64
	// WCET is the worst-case work of the job at full speed.
	WCET float64
	// AET is the actual work the job performs this activation,
	// 0 < AET <= WCET. The scheduler does not know AET in advance;
	// it is consumed by the simulator to decide when the job
	// actually completes.
	AET float64
}

// ID returns a compact stable identifier such as "T3#17".
func (j Job) ID() string { return fmt.Sprintf("T%d#%d", j.TaskIndex+1, j.Index) }

// JobOf materializes job k of task i in the set, with AET left equal
// to the WCET (callers typically overwrite AET from a workload
// generator).
func (ts *TaskSet) JobOf(task, k int) Job {
	t := ts.Tasks[task]
	r := float64(k) * t.Period
	return Job{
		TaskIndex:   task,
		Index:       k,
		Release:     r,
		AbsDeadline: r + t.RelDeadline(),
		WCET:        t.WCET,
		AET:         t.WCET,
	}
}

// JobsBefore returns every job of every task with release time
// strictly before horizon, in release order (ties broken by task
// index). AETs are set to the WCET.
func (ts *TaskSet) JobsBefore(horizon float64) []Job {
	var jobs []Job
	for i, t := range ts.Tasks {
		for k := 0; float64(k)*t.Period < horizon; k++ {
			jobs = append(jobs, ts.JobOf(i, k))
		}
	}
	sortJobsByRelease(jobs)
	return jobs
}

func sortJobsByRelease(jobs []Job) {
	// Insertion sort keeps the common nearly-sorted case cheap and
	// avoids pulling in sort for a two-key comparison.
	for i := 1; i < len(jobs); i++ {
		j := jobs[i]
		k := i - 1
		for k >= 0 && (jobs[k].Release > j.Release ||
			(jobs[k].Release == j.Release && jobs[k].TaskIndex > j.TaskIndex)) {
			jobs[k+1] = jobs[k]
			k--
		}
		jobs[k+1] = j
	}
}
