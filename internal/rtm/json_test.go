package rtm

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestTaskSetJSONRoundTrip(t *testing.T) {
	sets := append(Benchmarks(), Quickstart(),
		NewTaskSet("edge",
			Task{Name: "constrained", WCET: 1, Period: 10, Deadline: 4},
			Task{Name: "jittery", WCET: 0.5, Period: 8, Jitter: 2},
			Task{Name: "fractional", WCET: 0.125, Period: 2.5},
		),
	)
	for _, ts := range sets {
		t.Run(ts.Name, func(t *testing.T) {
			b, err := json.Marshal(ts)
			if err != nil {
				t.Fatal(err)
			}
			var got TaskSet
			if err := json.Unmarshal(b, &got); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&got, ts) {
				t.Errorf("round trip changed the set:\n got %+v\nwant %+v", &got, ts)
			}
		})
	}
}

func TestWriteReadJSONRoundTrip(t *testing.T) {
	ts := Quickstart()
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ts) {
		t.Errorf("WriteJSON/ReadJSON round trip changed the set:\n got %+v\nwant %+v", got, ts)
	}
}

func TestUnmarshalValidates(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty set", `{"tasks": []}`},
		{"zero wcet", `{"tasks": [{"wcet": 0, "period": 10}]}`},
		{"wcet over period", `{"tasks": [{"wcet": 11, "period": 10}]}`},
		{"deadline over period", `{"tasks": [{"wcet": 1, "period": 10, "deadline": 20}]}`},
		{"negative jitter", `{"tasks": [{"wcet": 1, "period": 10, "jitter": -1}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var ts TaskSet
			if err := json.Unmarshal([]byte(c.in), &ts); err == nil {
				t.Errorf("decoding %s should fail validation", c.in)
			}
		})
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("ReadJSON should reject non-JSON input")
	}
}

func TestJSONOmitsDefaults(t *testing.T) {
	b, err := json.Marshal(NewTaskSet("x", Task{WCET: 1, Period: 10}))
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"deadline", "jitter"} {
		if bytes.Contains(b, []byte(field)) {
			t.Errorf("zero %s should be omitted, got %s", field, b)
		}
	}
}
