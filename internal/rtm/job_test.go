package rtm

import (
	"bytes"
	"strings"
	"testing"
)

func TestJobOf(t *testing.T) {
	ts := NewTaskSet("x", Task{WCET: 2, Period: 10, Deadline: 7})
	j := ts.JobOf(0, 3)
	if j.Release != 30 || j.AbsDeadline != 37 || j.WCET != 2 || j.AET != 2 {
		t.Errorf("JobOf = %+v", j)
	}
	if j.ID() != "T1#3" {
		t.Errorf("ID = %q", j.ID())
	}
}

func TestJobsBefore(t *testing.T) {
	ts := NewTaskSet("x",
		Task{WCET: 1, Period: 4},
		Task{WCET: 1, Period: 6},
	)
	jobs := ts.JobsBefore(12)
	// Task 0 releases at 0,4,8 and task 1 at 0,6: five jobs.
	if len(jobs) != 5 {
		t.Fatalf("got %d jobs, want 5", len(jobs))
	}
	// Release-ordered, ties by task index.
	var prev float64 = -1
	for i, j := range jobs {
		if j.Release < prev {
			t.Errorf("job %d out of order", i)
		}
		prev = j.Release
	}
	if jobs[0].TaskIndex != 0 || jobs[1].TaskIndex != 1 {
		t.Error("tie at t=0 should order by task index")
	}
	if len(ts.JobsBefore(0)) != 0 {
		t.Error("zero horizon should yield no jobs")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ts := NewTaskSet("roundtrip",
		Task{Name: "a", WCET: 1.5, Period: 10},
		Task{Name: "b", WCET: 2, Period: 20, Deadline: 15},
	)
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ts.Name || len(got.Tasks) != len(ts.Tasks) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range ts.Tasks {
		if got.Tasks[i] != ts.Tasks[i] {
			t.Errorf("task %d mismatch: %+v vs %+v", i, got.Tasks[i], ts.Tasks[i])
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	_, err := ReadJSON(strings.NewReader(`{"tasks":[{"wcet":5,"period":2}]}`))
	if err == nil {
		t.Error("decoding an infeasible task should fail validation")
	}
	_, err = ReadJSON(strings.NewReader(`not json`))
	if err == nil {
		t.Error("garbage input should fail")
	}
}
