// Package rtm implements the real-time task model used throughout the
// library: periodic hard real-time tasks, their released jobs, task
// sets, and the synthetic task-set generators used by the evaluation
// (UUniFast utilization splitting, log-uniform period selection) as
// well as the representative embedded benchmark task sets.
//
// Conventions:
//
//   - Time is a float64 in abstract "time units" (the benchmarks use
//     milliseconds). One unit of execution at full processor speed
//     (s = 1) performs one unit of work, so WCETs are expressed as
//     worst-case cycles normalized to the maximum frequency.
//   - Tasks are independent, fully preemptive, and periodic with the
//     first job of every task released at time zero (a synchronous
//     task set), matching the DATE 2002 system model.
//   - Relative deadlines default to the period (implicit deadlines)
//     but constrained deadlines (D <= T) are supported everywhere.
package rtm

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Task is a periodic hard real-time task.
//
// The zero value is not a valid task; use the composite literal form
// or NewTask, and call Validate (directly or through TaskSet.Validate)
// before simulating.
type Task struct {
	// Name identifies the task in traces and reports. Optional; the
	// task index is used when empty.
	Name string

	// WCET is the worst-case execution time in work units at full
	// speed (equivalently, worst-case cycles normalized to the
	// maximum frequency). Must be positive and no larger than
	// Deadline.
	WCET float64

	// Period is the (fixed) inter-release separation. Must be
	// positive.
	Period float64

	// Deadline is the relative deadline. Zero means "equal to
	// Period" (implicit deadline); otherwise it must satisfy
	// WCET <= Deadline <= Period.
	Deadline float64

	// Jitter is the maximum release delay: job k is released at
	// k·Period + j with j drawn from [0, Jitter], and its absolute
	// deadline follows the *actual* release. Zero (the default)
	// gives the strictly periodic model of the paper; positive
	// values model the "dynamic workload" arrival noise. Must
	// satisfy 0 <= Jitter <= Period. See the package documentation
	// of internal/core for which policies retain their hard
	// guarantee under jitter.
	Jitter float64
}

// NewTask returns an implicit-deadline task.
func NewTask(name string, wcet, period float64) Task {
	return Task{Name: name, WCET: wcet, Period: period}
}

// RelDeadline returns the effective relative deadline (Period when the
// Deadline field is zero).
func (t Task) RelDeadline() float64 {
	if t.Deadline == 0 {
		return t.Period
	}
	return t.Deadline
}

// Utilization returns WCET/Period.
func (t Task) Utilization() float64 { return t.WCET / t.Period }

// Density returns WCET/min(Deadline, Period).
func (t Task) Density() float64 { return t.WCET / math.Min(t.RelDeadline(), t.Period) }

// Validate reports whether the task parameters are self-consistent.
func (t Task) Validate() error {
	switch {
	case !(t.WCET > 0) || math.IsInf(t.WCET, 0):
		return fmt.Errorf("rtm: task %q: WCET must be positive and finite, got %v", t.Name, t.WCET)
	case !(t.Period > 0) || math.IsInf(t.Period, 0):
		return fmt.Errorf("rtm: task %q: period must be positive and finite, got %v", t.Name, t.Period)
	// NaN compares false against everything, so the range checks below
	// would silently pass it — reject explicitly.
	case math.IsNaN(t.Deadline), t.Deadline < 0:
		return fmt.Errorf("rtm: task %q: deadline must be non-negative, got %v", t.Name, t.Deadline)
	case t.Deadline != 0 && t.Deadline > t.Period:
		return fmt.Errorf("rtm: task %q: deadline %v exceeds period %v (only constrained deadlines are supported)", t.Name, t.Deadline, t.Period)
	case t.WCET > t.RelDeadline():
		return fmt.Errorf("rtm: task %q: WCET %v exceeds deadline %v", t.Name, t.WCET, t.RelDeadline())
	case math.IsNaN(t.Jitter), t.Jitter < 0, t.Jitter > t.Period:
		return fmt.Errorf("rtm: task %q: jitter %v out of [0, period]", t.Name, t.Jitter)
	}
	return nil
}

// String implements fmt.Stringer.
func (t Task) String() string {
	if t.Deadline != 0 && t.Deadline != t.Period {
		return fmt.Sprintf("%s(C=%g,T=%g,D=%g)", t.name(), t.WCET, t.Period, t.Deadline)
	}
	return fmt.Sprintf("%s(C=%g,T=%g)", t.name(), t.WCET, t.Period)
}

func (t Task) name() string {
	if t.Name == "" {
		return "task"
	}
	return t.Name
}

// TaskSet is an ordered collection of periodic tasks.
type TaskSet struct {
	Name  string
	Tasks []Task
}

// NewTaskSet builds a task set and assigns default names T1..Tn to
// unnamed tasks.
func NewTaskSet(name string, tasks ...Task) *TaskSet {
	ts := &TaskSet{Name: name, Tasks: append([]Task(nil), tasks...)}
	for i := range ts.Tasks {
		if ts.Tasks[i].Name == "" {
			ts.Tasks[i].Name = fmt.Sprintf("T%d", i+1)
		}
	}
	return ts
}

// N returns the number of tasks.
func (ts *TaskSet) N() int { return len(ts.Tasks) }

// Utilization returns the total worst-case utilization sum(Ci/Ti).
func (ts *TaskSet) Utilization() float64 {
	var u float64
	for _, t := range ts.Tasks {
		u += t.Utilization()
	}
	return u
}

// Density returns the total density sum(Ci/min(Di,Ti)).
func (ts *TaskSet) Density() float64 {
	var d float64
	for _, t := range ts.Tasks {
		d += t.Density()
	}
	return d
}

// MaxPeriod returns the largest task period (zero for an empty set).
func (ts *TaskSet) MaxPeriod() float64 {
	var m float64
	for _, t := range ts.Tasks {
		m = math.Max(m, t.Period)
	}
	return m
}

// MinPeriod returns the smallest task period (zero for an empty set).
func (ts *TaskSet) MinPeriod() float64 {
	if len(ts.Tasks) == 0 {
		return 0
	}
	m := ts.Tasks[0].Period
	for _, t := range ts.Tasks[1:] {
		m = math.Min(m, t.Period)
	}
	return m
}

// TotalWCET returns sum(Ci).
func (ts *TaskSet) TotalWCET() float64 {
	var c float64
	for _, t := range ts.Tasks {
		c += t.WCET
	}
	return c
}

// Validate checks every task and the set as a whole.
func (ts *TaskSet) Validate() error {
	if len(ts.Tasks) == 0 {
		return errors.New("rtm: task set is empty")
	}
	for i, t := range ts.Tasks {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("rtm: task %d: %w", i, err)
		}
	}
	return nil
}

// Hyperperiod returns the least common multiple of the task periods,
// and whether it could be determined exactly. Periods are scaled by
// powers of ten (up to a fixed precision) to integers before taking
// the LCM; irrational or overly precise periods, and LCMs that
// overflow int64, yield ok == false, in which case callers should fall
// back to a bounded simulation horizon.
func (ts *TaskSet) Hyperperiod() (h float64, ok bool) {
	if len(ts.Tasks) == 0 {
		return 0, false
	}
	// Find a common decimal scale that makes every period integral.
	const maxScale = 1e6
	scale := 1.0
	for _, t := range ts.Tasks {
		for scale <= maxScale && !isIntegral(t.Period*scale) {
			scale *= 10
		}
		if !isIntegral(t.Period * scale) {
			return 0, false
		}
	}
	l := int64(1)
	for _, t := range ts.Tasks {
		p := int64(math.Round(t.Period * scale))
		var over bool
		l, over = lcm64(l, p)
		if over {
			return 0, false
		}
	}
	return float64(l) / scale, true
}

// isIntegral reports whether v is (very nearly) an integer small
// enough to be exactly representable.
func isIntegral(v float64) bool {
	if v < 0 || v > 1e15 {
		return false
	}
	return math.Abs(v-math.Round(v)) < 1e-9
}

// gcd64 returns the greatest common divisor of a and b (both > 0).
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// lcm64 returns the least common multiple of a and b, and whether the
// computation overflowed int64.
func lcm64(a, b int64) (l int64, overflow bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	g := gcd64(a, b)
	q := a / g
	if q > math.MaxInt64/b {
		return 0, true
	}
	return q * b, false
}

// SortedByPeriod returns a copy of the task set with tasks ordered by
// increasing period (rate-monotonic order).
func (ts *TaskSet) SortedByPeriod() *TaskSet {
	out := NewTaskSet(ts.Name, ts.Tasks...)
	sort.SliceStable(out.Tasks, func(i, j int) bool {
		return out.Tasks[i].Period < out.Tasks[j].Period
	})
	return out
}

// Scale returns a copy with every WCET multiplied by k, e.g. to adjust
// utilization while keeping periods.
func (ts *TaskSet) Scale(k float64) *TaskSet {
	out := NewTaskSet(ts.Name, ts.Tasks...)
	for i := range out.Tasks {
		out.Tasks[i].WCET *= k
	}
	return out
}

// ScaleToUtilization returns a copy whose worst-case utilization is
// exactly u (WCETs scaled proportionally).
func (ts *TaskSet) ScaleToUtilization(u float64) *TaskSet {
	cur := ts.Utilization()
	if cur <= 0 {
		return NewTaskSet(ts.Name, ts.Tasks...)
	}
	return ts.Scale(u / cur)
}
