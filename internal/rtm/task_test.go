package rtm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name string
		task Task
		ok   bool
	}{
		{"valid implicit", Task{WCET: 1, Period: 10}, true},
		{"valid constrained", Task{WCET: 1, Period: 10, Deadline: 5}, true},
		{"deadline equals wcet", Task{WCET: 5, Period: 10, Deadline: 5}, true},
		{"zero wcet", Task{WCET: 0, Period: 10}, false},
		{"negative wcet", Task{WCET: -1, Period: 10}, false},
		{"zero period", Task{WCET: 1, Period: 0}, false},
		{"wcet over period", Task{WCET: 11, Period: 10}, false},
		{"wcet over deadline", Task{WCET: 6, Period: 10, Deadline: 5}, false},
		{"deadline over period", Task{WCET: 1, Period: 10, Deadline: 11}, false},
		{"negative deadline", Task{WCET: 1, Period: 10, Deadline: -1}, false},
		{"inf wcet", Task{WCET: math.Inf(1), Period: 10}, false},
		{"nan period", Task{WCET: 1, Period: math.NaN()}, false},
		{"nan wcet", Task{WCET: math.NaN(), Period: 10}, false},
		{"inf period", Task{WCET: 1, Period: math.Inf(1)}, false},
		{"nan deadline", Task{WCET: 1, Period: 10, Deadline: math.NaN()}, false},
		{"inf deadline", Task{WCET: 1, Period: 10, Deadline: math.Inf(1)}, false},
		{"valid jitter", Task{WCET: 1, Period: 10, Jitter: 2}, true},
		{"jitter equals period", Task{WCET: 1, Period: 10, Jitter: 10}, true},
		{"negative jitter", Task{WCET: 1, Period: 10, Jitter: -1}, false},
		{"jitter over period", Task{WCET: 1, Period: 10, Jitter: 11}, false},
		{"nan jitter", Task{WCET: 1, Period: 10, Jitter: math.NaN()}, false},
		{"inf jitter", Task{WCET: 1, Period: 10, Jitter: math.Inf(1)}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.task.Validate()
			if c.ok && err != nil {
				t.Errorf("want valid, got %v", err)
			}
			if !c.ok && err == nil {
				t.Errorf("want error, got none")
			}
		})
	}
}

func TestRelDeadlineDefaults(t *testing.T) {
	if d := (Task{WCET: 1, Period: 8}).RelDeadline(); d != 8 {
		t.Errorf("implicit deadline = %v, want 8", d)
	}
	if d := (Task{WCET: 1, Period: 8, Deadline: 5}).RelDeadline(); d != 5 {
		t.Errorf("constrained deadline = %v, want 5", d)
	}
}

func TestUtilizationAndDensity(t *testing.T) {
	ts := NewTaskSet("x",
		Task{WCET: 1, Period: 4},
		Task{WCET: 2, Period: 8, Deadline: 4},
	)
	if u := ts.Utilization(); math.Abs(u-0.5) > 1e-12 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	if d := ts.Density(); math.Abs(d-0.75) > 1e-12 {
		t.Errorf("density = %v, want 0.75", d)
	}
}

func TestHyperperiod(t *testing.T) {
	cases := []struct {
		periods []float64
		want    float64
	}{
		{[]float64{4, 12, 15, 30, 40}, 120},
		{[]float64{10, 20, 25}, 100},
		{[]float64{2.4, 4.8, 9.6, 38.4, 76.8}, 76.8},
		{[]float64{66, 24}, 264},
		{[]float64{1}, 1},
	}
	for _, c := range cases {
		ts := &TaskSet{}
		for _, p := range c.periods {
			ts.Tasks = append(ts.Tasks, Task{WCET: p / 10, Period: p})
		}
		h, ok := ts.Hyperperiod()
		if !ok {
			t.Errorf("periods %v: hyperperiod not computable", c.periods)
			continue
		}
		if math.Abs(h-c.want) > 1e-9 {
			t.Errorf("periods %v: hyperperiod = %v, want %v", c.periods, h, c.want)
		}
	}
}

func TestHyperperiodIrrational(t *testing.T) {
	ts := NewTaskSet("x", Task{WCET: 0.1, Period: math.Pi})
	if _, ok := ts.Hyperperiod(); ok {
		t.Error("hyperperiod of an irrational period should be unknown")
	}
}

func TestHyperperiodOverflow(t *testing.T) {
	// Mutually prime large periods overflow int64 LCM.
	ts := NewTaskSet("x",
		Task{WCET: 1, Period: 1e9 + 7},
		Task{WCET: 1, Period: 1e9 + 9},
		Task{WCET: 1, Period: 1e9 + 21},
		Task{WCET: 1, Period: 1e9 + 33},
	)
	if h, ok := ts.Hyperperiod(); ok && h < 1e18 {
		t.Errorf("expected overflow or huge hyperperiod, got %v ok=%v", h, ok)
	}
}

func TestHyperperiodDividesAllPeriods(t *testing.T) {
	f := func(seed uint64) bool {
		ts := MustGenerate(DefaultGenConfig(1+int(seed%8), 0.5, seed))
		h, ok := ts.Hyperperiod()
		if !ok {
			return false
		}
		for _, task := range ts.Tasks {
			ratio := h / task.Period
			if math.Abs(ratio-math.Round(ratio)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleToUtilization(t *testing.T) {
	ts := NewTaskSet("x", Task{WCET: 1, Period: 10}, Task{WCET: 3, Period: 20})
	got := ts.ScaleToUtilization(0.8)
	if u := got.Utilization(); math.Abs(u-0.8) > 1e-12 {
		t.Errorf("scaled utilization = %v, want 0.8", u)
	}
	// Periods unchanged; original untouched.
	if got.Tasks[0].Period != 10 || got.Tasks[1].Period != 20 {
		t.Error("scaling must not change periods")
	}
	if ts.Tasks[0].WCET != 1 {
		t.Error("ScaleToUtilization must not mutate the receiver")
	}
}

func TestSortedByPeriod(t *testing.T) {
	ts := NewTaskSet("x",
		Task{Name: "c", WCET: 1, Period: 30},
		Task{Name: "a", WCET: 1, Period: 10},
		Task{Name: "b", WCET: 1, Period: 20},
	)
	got := ts.SortedByPeriod()
	if got.Tasks[0].Name != "a" || got.Tasks[1].Name != "b" || got.Tasks[2].Name != "c" {
		t.Errorf("sort order wrong: %v", got.Tasks)
	}
	if ts.Tasks[0].Name != "c" {
		t.Error("SortedByPeriod must not mutate the receiver")
	}
}

func TestTaskSetValidateEmpty(t *testing.T) {
	if err := (&TaskSet{}).Validate(); err == nil {
		t.Error("empty task set should not validate")
	}
}

func TestMinMaxPeriod(t *testing.T) {
	ts := NewTaskSet("x", Task{WCET: 1, Period: 5}, Task{WCET: 1, Period: 50})
	if ts.MinPeriod() != 5 || ts.MaxPeriod() != 50 {
		t.Errorf("min/max period = %v/%v, want 5/50", ts.MinPeriod(), ts.MaxPeriod())
	}
	empty := &TaskSet{}
	if empty.MinPeriod() != 0 || empty.MaxPeriod() != 0 {
		t.Error("empty set min/max period should be 0")
	}
}

func TestNewTaskSetNamesTasks(t *testing.T) {
	ts := NewTaskSet("x", Task{WCET: 1, Period: 2}, Task{Name: "keep", WCET: 1, Period: 2})
	if ts.Tasks[0].Name != "T1" {
		t.Errorf("anonymous task name = %q, want T1", ts.Tasks[0].Name)
	}
	if ts.Tasks[1].Name != "keep" {
		t.Errorf("named task renamed to %q", ts.Tasks[1].Name)
	}
}

func TestTaskString(t *testing.T) {
	s := Task{Name: "a", WCET: 1, Period: 4}.String()
	if s != "a(C=1,T=4)" {
		t.Errorf("String() = %q", s)
	}
	s = Task{Name: "a", WCET: 1, Period: 4, Deadline: 3}.String()
	if s != "a(C=1,T=4,D=3)" {
		t.Errorf("String() = %q", s)
	}
}
