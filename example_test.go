package dvsslack_test

import (
	"fmt"

	"dvsslack"
)

// ExampleSimulate runs the paper's policy on a small task set with a
// deterministic workload and prints the guarantee-relevant outcome.
func ExampleSimulate() {
	ts := dvsslack.NewTaskSet("demo",
		dvsslack.NewTask("sensor", 1, 4),
		dvsslack.NewTask("control", 2, 12),
	)
	res, err := dvsslack.Simulate(dvsslack.Config{
		TaskSet:   ts,
		Processor: dvsslack.ContinuousProcessor(0.1),
		Policy:    dvsslack.NewLpSHE(),
		Workload:  dvsslack.UniformWorkload(0.5, 1, 42),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("jobs=%d misses=%d energy>0=%v\n",
		res.JobsCompleted, res.DeadlineMisses, res.Energy > 0)
	// Output: jobs=4 misses=0 energy>0=true
}

// ExampleSimulate_comparison measures the paper's policy against the
// non-DVS reference on the identical workload trace.
func ExampleSimulate_comparison() {
	ts := dvsslack.CNCTaskSet()
	wl := dvsslack.UniformWorkload(0.5, 1, 7)
	proc := dvsslack.ContinuousProcessor(0.1)

	ref, _ := dvsslack.Simulate(dvsslack.Config{
		TaskSet: ts, Processor: proc, Policy: dvsslack.NewNonDVS(), Workload: wl,
	})
	res, _ := dvsslack.Simulate(dvsslack.Config{
		TaskSet: ts, Processor: proc, Policy: dvsslack.NewLpSHE(), Workload: wl,
	})
	fmt.Printf("saves energy: %v, misses: %d\n",
		res.Energy < ref.Energy, res.DeadlineMisses)
	// Output: saves energy: true, misses: 0
}

// ExampleGenerateTaskSet produces a random task set with a target
// worst-case utilization, the synthetic workload of the evaluation.
func ExampleGenerateTaskSet() {
	ts, err := dvsslack.GenerateTaskSet(dvsslack.GenConfig{
		N: 4, Utilization: 0.6, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("tasks=%d feasible=%v\n", ts.N(), dvsslack.EDFSchedulable(ts))
	// Output: tasks=4 feasible=true
}

// ExampleMinConstantSpeed shows the static analysis used by the
// staticEDF baseline.
func ExampleMinConstantSpeed() {
	ts := dvsslack.NewTaskSet("x",
		dvsslack.NewTask("a", 1, 4),  // utilization 0.25
		dvsslack.NewTask("b", 3, 12), // utilization 0.25
	)
	fmt.Printf("%.2f\n", dvsslack.MinConstantSpeed(ts))
	// Output: 0.50
}
