package client

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"dvsslack/internal/scenario"
)

const scenarioDoc = `version: 1
name: client-smoke
policies: [lpshe, nondvs]
tasks:
  - name: A
    wcet: 1
    period: 5
  - name: B
    wcet: 2
    period: 10
workload:
  kind: constant
  frac: 0.6
assertions:
  - kind: no_deadline_misses
  - kind: audit_clean
`

// TestRunScenario pins the transport contract: the bytes RunScenario
// returns are exactly what a local execution of the same document
// produces.
func TestRunScenario(t *testing.T) {
	c, _ := newPair(t)
	doc, errs := scenario.Parse("test", []byte(scenarioDoc))
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	v, err := scenario.Execute(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	want := v.JSON()

	got, err := c.RunScenario(context.Background(), []byte(scenarioDoc))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("remote verdict differs from local execution:\n%s\n---\n%s", got, want)
	}
}

// TestRunScenarioInvalid pins that validation failures surface every
// problem through APIError.Errors, not just the first.
func TestRunScenarioInvalid(t *testing.T) {
	c, _ := newPair(t)
	bad := []byte(`version: 9
name: bad doc
policies: [nope]
tasks:
  - name: A
    wcet: 0
    period: 5
assertions:
  - kind: bogus
`)
	_, err := c.RunScenario(context.Background(), bad)
	if err == nil {
		t.Fatal("invalid document accepted")
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error type %T, want *APIError", err)
	}
	if ae.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", ae.StatusCode)
	}
	if len(ae.Errors) < 3 {
		t.Fatalf("Errors lists %d problems, want all (>= 3): %v", len(ae.Errors), ae.Errors)
	}
}
