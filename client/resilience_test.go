package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"dvsslack/internal/resilience"
	"dvsslack/internal/rtm"
	"dvsslack/internal/server"
)

// TestSelfHealingUnderChaos is the resilience acceptance check: a
// retrying client completes a 50-request workload against a daemon in
// chaos mode — ~30% of requests delayed, errored, dropped, or
// truncated — with zero errors surfacing to the caller. Requests run
// sequentially, so with fixed chaos and jitter seeds the injected
// fault sequence and the retry schedule are both deterministic: this
// test cannot flake, it can only regress.
func TestSelfHealingUnderChaos(t *testing.T) {
	chaos := resilience.DefaultChaos(42)
	chaos.MaxDelay = 2 * time.Millisecond
	srv := server.New(server.Config{Workers: 2, Chaos: &chaos})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	c := New(hs.URL).WithRetry(RetryPolicy{
		MaxAttempts: 10,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},
		Budget:      500,
		// The point of this test is riding out every fault, not
		// failing fast, so the breaker stays effectively disabled.
		BreakerThreshold: 1000,
		Seed:             7,
	})

	const n = 50
	for i := 0; i < n; i++ {
		req := server.SimRequest{
			TaskSet:  rtm.Quickstart(),
			Policy:   "lpshe",
			Workload: server.WorkloadSpec{Kind: "uniform", Lo: 0.5, Hi: 1, Seed: uint64(i)},
		}
		res, err := c.Simulate(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d surfaced an error despite retries: %v", i, err)
		}
		if res.Energy <= 0 {
			t.Fatalf("request %d returned a degenerate result: %+v", i, res)
		}
	}

	st := c.RetryStats()
	if st.Attempts < n {
		t.Fatalf("attempts = %d, want >= %d", st.Attempts, n)
	}
	// Chaos at ~30% fault probability over 50 requests must have
	// forced at least one self-heal, or the harness isn't injecting.
	if st.Retries == 0 {
		t.Fatal("no retries happened: chaos injected nothing?")
	}
	if st.BudgetExhausted != 0 || st.BreakerRejects != 0 {
		t.Fatalf("stats = %+v, want no budget/breaker interference", st)
	}
	t.Logf("chaos workload: %d requests, %d attempts, %d retries", n, st.Attempts, st.Retries)
}
