package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"dvsslack/internal/rtm"
	"dvsslack/internal/server"
	"dvsslack/internal/sim"
)

func newPair(t *testing.T) (*Client, *server.Server) {
	t.Helper()
	s := server.New(server.Config{Workers: 4})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return New(hs.URL), s
}

func testRequest(policy string, seed uint64) server.SimRequest {
	return server.SimRequest{
		TaskSet:  rtm.Quickstart(),
		Policy:   policy,
		Workload: server.WorkloadSpec{Kind: "uniform", Lo: 0.5, Hi: 1, Seed: seed},
	}
}

func TestSimulate(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()

	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	req := testRequest("lpshe", 3)
	res, err := c.Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy != want.Energy {
		t.Fatalf("remote energy %v != local %v", res.Energy, want.Energy)
	}
}

func TestSimulateError(t *testing.T) {
	c, _ := newPair(t)
	_, err := c.Simulate(context.Background(), server.SimRequest{Policy: "lpshe"})
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error = %v (%T), want *APIError", err, err)
	}
	if apiErr.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", apiErr.StatusCode)
	}
}

func TestJobRoundTrip(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()

	var batch server.BatchRequest
	for i := 0; i < 5; i++ {
		batch.Runs = append(batch.Runs, testRequest("cc", uint64(i)))
	}
	info, err := c.CreateJob(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitJob(ctx, info.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.JobDone || len(final.Results) != 5 {
		t.Fatalf("final = %+v", final)
	}

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != info.ID {
		t.Fatalf("jobs = %+v", jobs)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.SimsRun == 0 {
		t.Fatal("metrics report zero sims after a finished job")
	}
}

func TestStreamEvents(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()

	var batch server.BatchRequest
	for i := 0; i < 4; i++ {
		batch.Runs = append(batch.Runs, testRequest("lpshe", uint64(50+i)))
	}
	info, err := c.CreateJob(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	var last server.JobEvent
	err = c.StreamEvents(ctx, info.ID, func(ev server.JobEvent) error {
		last = ev
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Type != "end" || last.State != server.JobDone || last.Done != 4 {
		t.Fatalf("last event = %+v", last)
	}
}
