package client

import (
	"context"
	"testing"

	"dvsslack/internal/rtm"
	"dvsslack/internal/server"
)

// TestSimulateAuditRoundTrip checks audit violations survive the full
// wire round trip: an infeasible audited request must come back
// through the typed client with its deadline-miss violations intact,
// and a feasible one must come back audited and clean.
func TestSimulateAuditRoundTrip(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()

	clean := testRequest("lpshe", 3)
	clean.Audit = true
	res, err := c.Simulate(ctx, clean)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Audited {
		t.Fatal("feasible run not marked audited")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("feasible audited run returned violations: %+v", res.Violations)
	}

	overload := server.SimRequest{
		TaskSet: &rtm.TaskSet{Tasks: []rtm.Task{
			{Name: "T1", WCET: 6, Period: 10},
			{Name: "T2", WCET: 6, Period: 10},
		}},
		Policy:  "nondvs",
		Horizon: 20,
		Audit:   true,
	}
	res, err = c.Simulate(ctx, overload)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Audited || len(res.Violations) == 0 {
		t.Fatalf("audited=%v violations=%d, want audited with violations",
			res.Audited, len(res.Violations))
	}
	for _, v := range res.Violations {
		if v.Invariant == "" || v.Detail == "" {
			t.Errorf("violation lost fields across the wire: %+v", v)
		}
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.SimsAudited < 2 {
		t.Errorf("sims_audited = %d, want >= 2", m.SimsAudited)
	}
	if m.AuditViolations == 0 {
		t.Error("audit_violations = 0 after an overloaded audited run")
	}
}
