package client

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"dvsslack/internal/obs"
)

// TestMetricsProm exercises the MetricsProm helper against a live
// test server: the body must be valid Prometheus text exposition and
// reflect traffic driven through the client.
func TestMetricsProm(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()

	if _, err := c.Simulate(ctx, testRequest("lpshe", 7)); err != nil {
		t.Fatal(err)
	}

	body, err := c.MetricsProm(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Fatal("MetricsProm returned an empty body")
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("invalid exposition:\n%s\nerror: %v", body, err)
	}
	for _, want := range []string{
		"dvsd_sims_total 1",
		`dvsd_http_requests_total{endpoint="simulate"} 1`,
		"# TYPE dvsd_policy_run_seconds histogram",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
