package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dvsslack/internal/resilience"
	"dvsslack/internal/server"
)

// instantRetry returns a client for url whose retry sleeps are
// recorded instead of slept, keeping the tests fast and letting them
// assert on the chosen delays.
func instantRetry(url string, p RetryPolicy) (*Client, *[]time.Duration) {
	c := New(url).WithRetry(p)
	var delays []time.Duration
	c.retry.sleep = func(ctx context.Context, d time.Duration) error {
		delays = append(delays, d)
		return ctx.Err()
	}
	return c, &delays
}

// TestRetryRecoversFromTransientFailures: a daemon that 503s twice
// and then answers is healed transparently.
func TestRetryRecoversFromTransientFailures(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer hs.Close()

	c, delays := instantRetry(hs.URL, RetryPolicy{Seed: 1})
	if err := c.Healthy(context.Background()); err != nil {
		t.Fatalf("Healthy after retries: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", calls.Load())
	}
	st := c.RetryStats()
	if st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 3 attempts / 2 retries", st)
	}
	// Retry-After: 1 dominates the early jittered backoff delays.
	for i, d := range *delays {
		if d < time.Second {
			t.Fatalf("delay %d = %v, want >= 1s (Retry-After honored)", i, d)
		}
	}
}

// TestRetryGivesUpAfterMaxAttempts: a hard-down daemon costs exactly
// MaxAttempts tries, and the final error carries the status.
func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer hs.Close()

	c, _ := instantRetry(hs.URL, RetryPolicy{MaxAttempts: 3, Seed: 1})
	err := c.Healthy(context.Background())
	var api *APIError
	if !errors.As(err, &api) || api.StatusCode != http.StatusInternalServerError {
		t.Fatalf("error = %v, want APIError 500", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", calls.Load())
	}
}

// TestNoRetryOnApplicationErrors: 4xx application answers are final.
func TestNoRetryOnApplicationErrors(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad scenario"}`, http.StatusUnprocessableEntity)
	}))
	defer hs.Close()

	c, _ := instantRetry(hs.URL, RetryPolicy{Seed: 1})
	err := c.Healthy(context.Background())
	var api *APIError
	if !errors.As(err, &api) || api.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("error = %v, want APIError 422", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (422 is not retryable)", calls.Load())
	}
}

// TestNoRetryOnCreateJob: submitting a batch twice would run it
// twice, so CreateJob gets exactly one attempt even under retries.
func TestNoRetryOnCreateJob(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"hiccup"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	c, _ := instantRetry(hs.URL, RetryPolicy{Seed: 1})
	if _, err := c.CreateJob(context.Background(), server.BatchRequest{}); err == nil {
		t.Fatal("CreateJob succeeded against a 503 server")
	}
	if calls.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (POST /v1/jobs is not idempotent)", calls.Load())
	}
}

// TestBreakerFailsFast: enough consecutive failures open the breaker;
// the next call is rejected without touching the network, and the
// breaker recovers through a half-open probe after the cooldown.
func TestBreakerFailsFast(t *testing.T) {
	var calls atomic.Int64
	var healthy atomic.Bool
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			w.Write([]byte(`{}`))
			return
		}
		http.Error(w, `{"error":"down"}`, http.StatusBadGateway)
	}))
	defer hs.Close()

	c, _ := instantRetry(hs.URL, RetryPolicy{
		MaxAttempts: 2, BreakerThreshold: 4, BreakerCooldown: 30 * time.Millisecond, Seed: 1,
	})
	// Two calls x two attempts = four consecutive failures.
	for i := 0; i < 2; i++ {
		if err := c.Healthy(context.Background()); err == nil {
			t.Fatal("Healthy succeeded against a down server")
		}
	}
	if got := c.BreakerState(); got != "open" {
		t.Fatalf("breaker state = %s, want open", got)
	}

	before := calls.Load()
	err := c.Healthy(context.Background())
	if !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("error = %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker still hit the network")
	}
	if c.RetryStats().BreakerRejects == 0 {
		t.Fatal("breaker rejection not counted")
	}

	// After the cooldown the half-open probe finds a healed daemon.
	healthy.Store(true)
	time.Sleep(50 * time.Millisecond)
	if err := c.Healthy(context.Background()); err != nil {
		t.Fatalf("Healthy after recovery: %v", err)
	}
	if got := c.BreakerState(); got != "closed" {
		t.Fatalf("breaker state after recovery = %s, want closed", got)
	}
}

// TestRetryBudgetBoundsAmplification: with a one-token budget, a
// down daemon gets one retry, then the budget stops the bleeding.
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	c, _ := instantRetry(hs.URL, RetryPolicy{MaxAttempts: 4, Budget: 1, BreakerThreshold: 100, Seed: 1})
	err := c.Healthy(context.Background())
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("error = %v, want budget exhaustion", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("attempts = %d, want 2 (1 try + 1 budgeted retry)", calls.Load())
	}
	if st := c.RetryStats(); st.BudgetExhausted != 1 {
		t.Fatalf("stats = %+v, want BudgetExhausted 1", st)
	}
}

// TestRetryDeterministicJitter: two clients with the same seed choose
// identical backoff delays; a different seed diverges.
func TestRetryDeterministicJitter(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
		}))
		defer hs.Close()
		c, delays := instantRetry(hs.URL, RetryPolicy{MaxAttempts: 6, Seed: seed})
		if err := c.Healthy(context.Background()); err == nil {
			t.Fatal("Healthy succeeded against a down server")
		}
		return *delays
	}
	a, b, other := schedule(7), schedule(7), schedule(8)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("schedule lengths = %d, %d, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, delay %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical jitter schedule")
	}
}

// TestDeadlineHeaderPropagation: a context deadline reaches the
// daemon as X-Request-Deadline; deadline-free calls send nothing.
func TestDeadlineHeaderPropagation(t *testing.T) {
	headers := make(chan string, 2)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headers <- r.Header.Get("X-Request-Deadline")
		w.Write([]byte(`{}`))
	}))
	defer hs.Close()

	c := New(hs.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("Healthy: %v", err)
	}
	h := <-headers
	d, err := time.ParseDuration(h)
	if err != nil {
		t.Fatalf("X-Request-Deadline %q is not a duration: %v", h, err)
	}
	if d <= 0 || d > 2*time.Second {
		t.Fatalf("X-Request-Deadline = %v, want within (0, 2s]", d)
	}

	if err := c.Healthy(context.Background()); err != nil {
		t.Fatalf("Healthy: %v", err)
	}
	if h := <-headers; h != "" {
		t.Fatalf("deadline-free call sent X-Request-Deadline %q", h)
	}
}

// TestMetricsDefaultTimeout: a Metrics call with context.Background()
// against a wedged daemon fails within the call timeout instead of
// hanging forever.
func TestMetricsDefaultTimeout(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // wedged: never answers
	}))
	defer hs.Close()

	c := New(hs.URL).WithCallTimeout(50 * time.Millisecond)
	start := time.Now()
	if _, err := c.Metrics(context.Background()); err == nil {
		t.Fatal("Metrics against a wedged daemon returned nil error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Metrics took %v, want the 50ms call timeout to bound it", d)
	}
	start = time.Now()
	if _, err := c.MetricsProm(context.Background()); err == nil {
		t.Fatal("MetricsProm against a wedged daemon returned nil error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("MetricsProm took %v, want the 50ms call timeout to bound it", d)
	}
}

// TestStreamEventsReconnects: a stream severed before its terminal
// event is re-established under a retry policy and runs to "end"; the
// caller's own error still stops it for good.
func TestStreamEventsReconnects(t *testing.T) {
	var conns atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: progress\ndata: {\"type\":\"progress\",\"state\":\"running\",\"total\":2,\"done\":1}\n\n")
		w.(http.Flusher).Flush()
		if n == 1 {
			panic(http.ErrAbortHandler) // sever the first connection mid-stream
		}
		fmt.Fprint(w, "event: end\ndata: {\"type\":\"end\",\"state\":\"done\",\"total\":2,\"done\":2}\n\n")
	}))
	defer hs.Close()

	c, _ := instantRetry(hs.URL, RetryPolicy{Seed: 3})
	var events []server.JobEvent
	err := c.StreamEvents(context.Background(), "j1", func(ev server.JobEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("StreamEvents: %v", err)
	}
	if conns.Load() != 2 {
		t.Fatalf("connections = %d, want 2 (one reconnect)", conns.Load())
	}
	if len(events) == 0 || events[len(events)-1].Type != "end" {
		t.Fatalf("events = %+v, want a terminal end event", events)
	}

	// fn's own error is final: no reconnect, error surfaced verbatim.
	conns.Store(0)
	stop := errors.New("seen enough")
	err = c.StreamEvents(context.Background(), "j1", func(server.JobEvent) error { return stop })
	if !errors.Is(err, stop) {
		t.Fatalf("StreamEvents = %v, want the caller's own error", err)
	}
	if conns.Load() != 1 {
		t.Fatalf("connections after fn error = %d, want 1", conns.Load())
	}
}

// TestStreamEventsLegacyTruncation: without a retry policy a stream
// that closes before "end" keeps returning nil (historical contract).
func TestStreamEventsLegacyTruncation(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: progress\ndata: {\"type\":\"progress\",\"state\":\"running\"}\n\n")
	}))
	defer hs.Close()

	saw := 0
	err := New(hs.URL).StreamEvents(context.Background(), "j1", func(server.JobEvent) error {
		saw++
		return nil
	})
	if err != nil || saw != 1 {
		t.Fatalf("legacy truncated stream: err=%v saw=%d, want nil/1", err, saw)
	}
}
