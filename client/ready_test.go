package client

import (
	"context"
	"testing"
	"time"
)

// TestReady probes a live daemon through the real HTTP path: ready
// while serving, 503 with a Retry-After hint once draining. The
// dvsfleet health checker routes on exactly this call, so its error
// shape (an *APIError carrying the status) is a contract, not a
// convenience.
func TestReady(t *testing.T) {
	c, s := newPair(t)
	ctx := context.Background()

	if err := c.Ready(ctx); err != nil {
		t.Fatalf("Ready on a fresh daemon: %v", err)
	}

	// Shutdown flips the daemon to draining: Ready must now fail with
	// a typed 503 (and not, say, a transport error — the process is
	// still up).
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	err := c.Ready(ctx)
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("Ready on draining daemon = %v (%T), want *APIError", err, err)
	}
	if apiErr.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", apiErr.StatusCode)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want a positive drain hint", apiErr.RetryAfter)
	}
}

// TestReadyUnreachable pins the transport-error path the fleet's
// passive down-detection relies on: a dead address yields a non-API
// error.
func TestReadyUnreachable(t *testing.T) {
	c := New("127.0.0.1:1") // reserved port, nothing listens
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := c.Ready(ctx)
	if err == nil {
		t.Fatal("Ready against a dead address succeeded")
	}
	if _, ok := err.(*APIError); ok {
		t.Fatalf("transport failure surfaced as *APIError: %v", err)
	}
}
