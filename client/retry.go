package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"dvsslack/internal/obs"
	"dvsslack/internal/prng"
	"dvsslack/internal/resilience"
)

// RetryPolicy tunes the client's self-healing behaviour: exponential
// backoff with full jitter between attempts, a token budget bounding
// total retry amplification, and a consecutive-failure circuit
// breaker that fails fast while the daemon is down.
//
// Only idempotent calls are ever retried: every GET and DELETE, plus
// Simulate — POST /v1/simulate is a pure function of its body (same
// request, same result, memoized server-side), so replaying it is
// safe. CreateJob is NOT retried: replaying it would enqueue the
// batch twice.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (first
	// attempt included); <= 0 selects 4.
	MaxAttempts int
	// Backoff shapes the delay between attempts; the zero value
	// selects resilience defaults (50ms base, 5s cap, factor 2).
	Backoff resilience.Backoff
	// Budget is the retry token budget: each retry spends one token,
	// each successful call refunds half a token (up to Budget), so a
	// persistently failing daemon is not hammered with MaxAttempts×
	// traffic forever. <= 0 selects 50.
	Budget int
	// BreakerThreshold consecutive failed calls open the circuit
	// breaker for BreakerCooldown: calls fail fast with
	// resilience.ErrBreakerOpen instead of timing out one by one.
	// <= 0 select 5 and 2s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed drives the jitter stream, making retry schedules
	// deterministic in tests. Production callers should vary it per
	// client (e.g. PID) so fleets do not thunder in lockstep.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.Budget <= 0 {
		p.Budget = 50
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 2 * time.Second
	}
	return p
}

// RetryStats is a snapshot of the client's retry accounting.
type RetryStats struct {
	// Attempts counts every HTTP attempt, first tries included.
	Attempts uint64
	// Retries counts re-attempts after a retryable failure.
	Retries uint64
	// BreakerRejects counts calls failed fast by the open breaker.
	BreakerRejects uint64
	// BudgetExhausted counts retries suppressed by an empty budget.
	BudgetExhausted uint64
}

// retrier holds the mutable retry state shared by all calls of one
// Client.
type retrier struct {
	policy  RetryPolicy
	breaker *resilience.Breaker

	mu     sync.Mutex
	rng    *prng.Source
	budget float64
	stats  RetryStats

	// sleep is swapped by tests to make retry schedules instant.
	sleep func(ctx context.Context, d time.Duration) error
}

func newRetrier(p RetryPolicy) *retrier {
	p = p.withDefaults()
	return &retrier{
		policy:  p,
		breaker: resilience.NewBreaker(p.BreakerThreshold, p.BreakerCooldown),
		rng:     prng.New(p.Seed),
		budget:  float64(p.Budget),
		sleep:   sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// attempt/refund/spend maintain the token budget and counters.
func (rt *retrier) attempt() {
	rt.mu.Lock()
	rt.stats.Attempts++
	rt.mu.Unlock()
}

func (rt *retrier) refund() {
	rt.mu.Lock()
	if rt.budget += 0.5; rt.budget > float64(rt.policy.Budget) {
		rt.budget = float64(rt.policy.Budget)
	}
	rt.mu.Unlock()
}

func (rt *retrier) spend() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.budget < 1 {
		rt.stats.BudgetExhausted++
		return false
	}
	rt.budget--
	rt.stats.Retries++
	return true
}

func (rt *retrier) rejectedByBreaker() {
	rt.mu.Lock()
	rt.stats.BreakerRejects++
	rt.mu.Unlock()
}

// delay computes the pause before re-attempting: full-jitter
// exponential backoff, raised to the server's Retry-After hint when
// one was given (never above the backoff cap — a hinting server does
// not get to park the client indefinitely).
func (rt *retrier) delay(attempt int, hint time.Duration) time.Duration {
	rt.mu.Lock()
	u := rt.rng.Float64()
	rt.mu.Unlock()
	d := rt.policy.Backoff.Delay(attempt, u)
	if hint > 0 {
		if max := rt.policy.Backoff.Cap(1 << 10); hint > max {
			hint = max
		}
		if d < hint {
			d = hint
		}
	}
	return d
}

// retryable classifies an error: transport-level failures (connection
// refused/reset, EOF, truncated or garbled bodies) and throttling or
// server-fault statuses are worth re-attempting; application errors
// (validation, unknown job, infeasible scenario) and the caller's own
// context expiring are not.
func retryable(err error) bool {
	var api *APIError
	if errors.As(err, &api) {
		switch api.StatusCode {
		case http.StatusRequestTimeout, http.StatusTooManyRequests,
			http.StatusInternalServerError, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// retryAfterHint extracts a server-provided Retry-After duration.
func retryAfterHint(err error) time.Duration {
	var api *APIError
	if errors.As(err, &api) {
		return api.RetryAfter
	}
	return 0
}

// roundTrip wraps the retrying transport in a client span when a
// tracer is configured (WithTracer). The span covers every attempt of
// the call and parents the daemon's handler span via the Traceparent
// header doOnce injects from the span's context.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte, idem bool, receive func(*http.Response) error) error {
	if c.tracer == nil {
		return c.roundTripAttempts(ctx, method, path, body, idem, receive)
	}
	parent, _ := obs.SpanContextFromContext(ctx)
	span := c.tracer.StartSpan(parent, "client."+path)
	span.SetAttr("method", method)
	ctx = obs.ContextWithSpanContext(ctx, span.Context())
	err := c.roundTripAttempts(ctx, method, path, body, idem, receive)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	return err
}

// roundTripAttempts is the retrying transport shared by every client
// call. receive consumes a 2xx response body; it runs once per
// attempt, so it must be safe to call again after a truncated read.
func (c *Client) roundTripAttempts(ctx context.Context, method, path string, body []byte, idem bool, receive func(*http.Response) error) error {
	rt := c.retry
	attempts := 1
	if rt != nil && idem {
		attempts = rt.policy.MaxAttempts
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if rt != nil {
			if berr := rt.breaker.Allow(); berr != nil {
				rt.rejectedByBreaker()
				return fmt.Errorf("client: %s %s: %w", method, path, berr)
			}
		}
		err = c.doOnce(ctx, method, path, body, receive)
		if rt != nil {
			rt.attempt()
			// The breaker tracks service health: a non-retryable
			// application error (400/404/422) is a healthy answer.
			rt.breaker.Record(err == nil || !retryable(err))
		}
		if err == nil {
			if rt != nil {
				rt.refund()
			}
			return nil
		}
		if rt == nil || !idem || !retryable(err) || attempt+1 >= attempts {
			return err
		}
		if !rt.spend() {
			return fmt.Errorf("client: retry budget exhausted: %w", err)
		}
		if serr := rt.sleep(ctx, rt.delay(attempt, retryAfterHint(err))); serr != nil {
			return serr
		}
	}
	return err
}

// RetryStats returns a snapshot of the retry accounting; zero value
// when retries are not configured.
func (c *Client) RetryStats() RetryStats {
	if c.retry == nil {
		return RetryStats{}
	}
	c.retry.mu.Lock()
	defer c.retry.mu.Unlock()
	return c.retry.stats
}

// BreakerState returns the circuit breaker state ("closed", "open",
// "half-open"), or "disabled" without a retry policy. Diagnostics
// only.
func (c *Client) BreakerState() string {
	if c.retry == nil {
		return "disabled"
	}
	return c.retry.breaker.State()
}
