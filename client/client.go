// Package client is the Go client for dvsd, the simulation daemon
// (internal/server, cmd/dvsd). It wraps the HTTP/JSON wire protocol
// — synchronous single runs, async batch jobs, metrics — behind typed
// calls, and is what cmd/dvsexp uses to farm experiment replications
// out to a daemon.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"dvsslack/internal/obs"
	"dvsslack/internal/server"
)

// DefaultCallTimeout bounds Metrics and MetricsProm calls made with a
// deadline-free context: a scrape against a wedged daemon returns an
// error instead of hanging forever. Override with WithCallTimeout.
const DefaultCallTimeout = 10 * time.Second

// Client talks to one dvsd instance. The zero value is not usable;
// construct with New. Client is safe for concurrent use.
type Client struct {
	base        string
	http        *http.Client
	retry       *retrier
	callTimeout time.Duration
	tracer      *obs.Tracer
}

// New returns a client for the daemon at addr (host:port or a full
// http:// URL).
func New(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &Client{base: base, http: &http.Client{}}
}

// WithHTTPClient replaces the underlying *http.Client (e.g. to set
// timeouts or transports) and returns the client for chaining.
func (c *Client) WithHTTPClient(h *http.Client) *Client {
	c.http = h
	return c
}

// WithRetry makes the client self-healing under the given policy:
// idempotent calls that fail with transport errors or retryable
// statuses (408/429/5xx) are re-attempted with jittered exponential
// backoff, honoring the server's Retry-After hints, metered by a
// retry budget and a circuit breaker. See RetryPolicy for which calls
// qualify. Returns the client for chaining.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = newRetrier(p)
	return c
}

// WithCallTimeout replaces DefaultCallTimeout for Metrics and
// MetricsProm calls whose context carries no deadline. Returns the
// client for chaining.
func (c *Client) WithCallTimeout(d time.Duration) *Client {
	c.callTimeout = d
	return c
}

// WithTracer records a client span around every call into tr, making
// the client a trace originator: a call whose context carries no span
// context roots a fresh trace that the daemon (and a fleet
// coordinator in between) continues. Header propagation — Traceparent
// and X-Request-ID from the call's context — happens with or without
// a tracer; this only enables local span recording. Returns the
// client for chaining.
func (c *Client) WithTracer(tr *obs.Tracer) *Client {
	c.tracer = tr
	return c
}

// APIError is a non-2xx daemon response.
type APIError struct {
	StatusCode int
	Message    string
	// Errors lists every problem when the server reported more than
	// one (scenario validation responses); empty otherwise.
	Errors []string
	// RetryAfter is the server's Retry-After hint, zero when absent.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("dvsd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// readAPIError decodes a non-2xx response into an APIError, capturing
// the Retry-After hint on shed/draining responses.
func readAPIError(resp *http.Response) *APIError {
	var eb server.ErrorBody
	msg := resp.Status
	if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	e := &APIError{StatusCode: resp.StatusCode, Message: msg, Errors: eb.Errors}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// do round-trips one JSON request through the (possibly retrying)
// transport. A nil in sends no body; a nil out discards the response
// body; idem marks the call safe to replay.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idem bool) error {
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = b
	}
	return c.roundTrip(ctx, method, path, body, idem, func(resp *http.Response) error {
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
		return nil
	})
}

// doOnce performs a single HTTP attempt. The caller's context
// deadline, when set, is propagated as X-Request-Deadline so the
// server can shed work it could never answer in time.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, receive func(*http.Response) error) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if dl, ok := ctx.Deadline(); ok {
		if left := time.Until(dl).Round(time.Millisecond); left > 0 {
			req.Header.Set("X-Request-Deadline", left.String())
		}
	}
	injectTraceHeaders(ctx, req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return readAPIError(resp)
	}
	if receive == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return receive(resp)
}

// injectTraceHeaders forwards the context's request ID and span
// context as X-Request-ID / Traceparent headers. Propagation is
// deliberately independent of whether any tracer records spans, so
// enabling or disabling recording cannot change request bytes.
func injectTraceHeaders(ctx context.Context, req *http.Request) {
	if id, ok := obs.RequestIDFromContext(ctx); ok && obs.ValidRequestID(id) {
		req.Header.Set("X-Request-ID", id)
	}
	if sc, ok := obs.SpanContextFromContext(ctx); ok {
		req.Header.Set(obs.TraceparentHeader, sc.Traceparent())
	}
}

// Healthy reports whether the daemon answers /healthz.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, true)
}

// Ready reports whether the daemon answers /readyz: healthy, not
// draining, and with admission headroom.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil, true)
}

// Simulate runs one simulation synchronously. The call is idempotent
// — the daemon memoizes results by request content — so it is retried
// under a retry policy.
func (c *Client) Simulate(ctx context.Context, req server.SimRequest) (server.SimResult, error) {
	var res server.SimResult
	err := c.do(ctx, http.MethodPost, "/v1/simulate", &req, &res, true)
	return res, err
}

// RunScenario executes a declarative scenario document (raw YAML or
// JSON bytes) via POST /v1/scenario and returns the verdict in its
// canonical byte form — identical to a local `dvsscen run -json` of
// the same document. Scenario execution is deterministic, so the
// call is idempotent and rides the client's retry and deadline
// plumbing like Simulate. Validation failures surface as an APIError
// carrying every problem the validator found.
func (c *Client) RunScenario(ctx context.Context, doc []byte) ([]byte, error) {
	var out []byte
	err := c.roundTrip(ctx, http.MethodPost, "/v1/scenario", doc, true, func(resp *http.Response) error {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		out = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CreateJob submits a batch and returns its initial status. Never
// retried (a replay would enqueue the batch twice); callers that need
// at-most-once semantics with retries should check Jobs for a
// matching name before re-submitting.
func (c *Client) CreateJob(ctx context.Context, batch server.BatchRequest) (server.JobInfo, error) {
	var info server.JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs", &batch, &info, false)
	return info, err
}

// Job fetches a job's status; withResults includes per-run outcomes.
func (c *Client) Job(ctx context.Context, id string, withResults bool) (server.JobInfo, error) {
	path := "/v1/jobs/" + url.PathEscape(id)
	if withResults {
		path += "?results=1"
	}
	var info server.JobInfo
	err := c.do(ctx, http.MethodGet, path, nil, &info, true)
	return info, err
}

// Jobs lists every job the daemon knows.
func (c *Client) Jobs(ctx context.Context) ([]server.JobInfo, error) {
	var out []server.JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out, true)
	return out, err
}

// CancelJob aborts a job's remaining runs. Cancelling twice is a
// no-op server-side, so the call is retried under a retry policy.
func (c *Client) CancelJob(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil, true)
}

// CheckpointJob pauses a job at its next step boundaries and returns
// the portable checkpoint document: recorded outcomes plus a
// mid-flight engine snapshot per interrupted run. Not retried — a
// replay against a job that settled meanwhile would still succeed,
// but pausing is a state change the caller should see fail loudly.
func (c *Client) CheckpointJob(ctx context.Context, id string) (server.JobCheckpoint, error) {
	var doc server.JobCheckpoint
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/checkpoint", nil, &doc, false)
	return doc, err
}

// RestoreJob resumes a checkpoint document as a fresh job on the
// daemon (finished runs are skipped, snapshotted runs continue
// mid-simulation). Never retried: a replay would enqueue the job
// twice.
func (c *Client) RestoreJob(ctx context.Context, doc server.JobCheckpoint) (server.JobInfo, error) {
	var info server.JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs/restore", &doc, &info, false)
	return info, err
}

// WaitJob polls until the job reaches a terminal state (or ctx
// expires) and returns its final status with results.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (server.JobInfo, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		info, err := c.Job(ctx, id, true)
		if err != nil {
			return info, err
		}
		switch info.State {
		case server.JobDone, server.JobFailed, server.JobCancelled, server.JobCheckpointed:
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-t.C:
		}
	}
}

// boundedCtx caps deadline-free scrape contexts with the call
// timeout; contexts that already carry a deadline pass through.
func (c *Client) boundedCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	d := c.callTimeout
	if d <= 0 {
		d = DefaultCallTimeout
	}
	return context.WithTimeout(ctx, d)
}

// Metrics fetches the daemon's metrics snapshot. Calls without a
// context deadline are bounded by the call timeout (DefaultCallTimeout
// unless WithCallTimeout).
func (c *Client) Metrics(ctx context.Context) (server.MetricsSnapshot, error) {
	ctx, cancel := c.boundedCtx(ctx)
	defer cancel()
	var m server.MetricsSnapshot
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m, true)
	return m, err
}

// MetricsProm fetches the daemon's Prometheus text exposition
// (/metrics.prom) and returns the raw body. Bounded like Metrics.
func (c *Client) MetricsProm(ctx context.Context) ([]byte, error) {
	return c.rawGet(ctx, "/metrics.prom")
}

// TraceDump fetches the daemon's span ring (GET /debug/trace) as raw
// JSON — an obs.TraceDump document. Bounded like Metrics. A daemon
// running without a span buffer answers 404, surfaced as *APIError.
func (c *Client) TraceDump(ctx context.Context) ([]byte, error) {
	return c.rawGet(ctx, "/debug/trace")
}

// rawGet fetches one endpoint's body verbatim under the call timeout.
func (c *Client) rawGet(ctx context.Context, path string) ([]byte, error) {
	ctx, cancel := c.boundedCtx(ctx)
	defer cancel()
	var out []byte
	err := c.roundTrip(ctx, http.MethodGet, path, nil, true, func(resp *http.Response) error {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		out = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// errTruncatedStream marks an SSE stream that closed before its
// terminal "end" event (connection drop, chaos truncation).
var errTruncatedStream = errors.New("client: SSE stream ended before terminal event")

// stopStreamError wraps an error the caller's fn returned, so the
// reconnect loop can tell "caller said stop" from stream failures.
type stopStreamError struct{ err error }

func (e *stopStreamError) Error() string { return e.err.Error() }
func (e *stopStreamError) Unwrap() error { return e.err }

// StreamEvents subscribes to a job's SSE progress stream, invoking fn
// for every event until the terminal "end" event or ctx cancellation.
// fn returning a non-nil error stops the stream and is returned as-is.
//
// Under a retry policy the stream is self-healing: a connection that
// drops before the "end" event is re-established with backoff (budget
// rules apply; the circuit breaker does not gate long-lived streams).
// Every (re)connection first delivers a snapshot event carrying the
// job's cumulative progress, so fn may see the same totals twice but
// never misses the final state. Without a retry policy a stream that
// closes early returns nil, matching historical behaviour.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(server.JobEvent) error) error {
	rt := c.retry
	attempts := 1
	if rt != nil {
		attempts = rt.policy.MaxAttempts
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		err = c.streamOnce(ctx, id, fn)
		var stop *stopStreamError
		if errors.As(err, &stop) {
			return stop.err
		}
		if err == nil {
			return nil
		}
		if rt == nil {
			if errors.Is(err, errTruncatedStream) {
				return nil
			}
			return err
		}
		if !retryable(err) || attempt+1 >= attempts {
			return err
		}
		if !rt.spend() {
			return fmt.Errorf("client: retry budget exhausted: %w", err)
		}
		if serr := rt.sleep(ctx, rt.delay(attempt, retryAfterHint(err))); serr != nil {
			return serr
		}
	}
	return err
}

// streamOnce runs a single SSE connection to completion.
func (c *Client) streamOnce(ctx context.Context, id string, fn func(server.JobEvent) error) error {
	if rt := c.retry; rt != nil {
		rt.attempt()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	injectTraceHeaders(ctx, req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return readAPIError(resp)
	}
	dec := newSSEDecoder(resp.Body)
	for {
		ev, err := dec.next()
		if err == io.EOF {
			return errTruncatedStream
		}
		if err != nil {
			return err
		}
		if err := fn(ev); err != nil {
			return &stopStreamError{err: err}
		}
		if ev.Type == "end" {
			return nil
		}
	}
}

// sseDecoder parses the minimal SSE dialect the daemon emits.
type sseDecoder struct {
	r *bufReader
}

func newSSEDecoder(r io.Reader) *sseDecoder { return &sseDecoder{r: newBufReader(r)} }

func (d *sseDecoder) next() (server.JobEvent, error) {
	for {
		line, err := d.r.line()
		if err != nil {
			return server.JobEvent{}, err
		}
		if strings.HasPrefix(line, "data: ") {
			var ev server.JobEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				return server.JobEvent{}, fmt.Errorf("client: bad SSE payload %q: %w", line, err)
			}
			return ev, nil
		}
	}
}

// bufReader is a minimal line reader without bufio's buffer-size
// pitfalls for long data lines.
type bufReader struct {
	r   io.Reader
	buf []byte
}

func newBufReader(r io.Reader) *bufReader { return &bufReader{r: r} }

func (b *bufReader) line() (string, error) {
	for {
		if i := bytes.IndexByte(b.buf, '\n'); i >= 0 {
			line := strings.TrimRight(string(b.buf[:i]), "\r")
			b.buf = b.buf[i+1:]
			return line, nil
		}
		chunk := make([]byte, 4096)
		n, err := b.r.Read(chunk)
		if n > 0 {
			b.buf = append(b.buf, chunk[:n]...)
			continue
		}
		if err != nil {
			if len(b.buf) > 0 {
				line := strings.TrimRight(string(b.buf), "\r")
				b.buf = nil
				return line, nil
			}
			return "", err
		}
	}
}
