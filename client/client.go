// Package client is the Go client for dvsd, the simulation daemon
// (internal/server, cmd/dvsd). It wraps the HTTP/JSON wire protocol
// — synchronous single runs, async batch jobs, metrics — behind typed
// calls, and is what cmd/dvsexp uses to farm experiment replications
// out to a daemon.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"dvsslack/internal/server"
)

// Client talks to one dvsd instance. The zero value is not usable;
// construct with New. Client is safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the daemon at addr (host:port or a full
// http:// URL).
func New(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &Client{base: base, http: &http.Client{}}
}

// WithHTTPClient replaces the underlying *http.Client (e.g. to set
// timeouts or transports) and returns the client for chaining.
func (c *Client) WithHTTPClient(h *http.Client) *Client {
	c.http = h
	return c
}

// APIError is a non-2xx daemon response.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("dvsd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// do round-trips one JSON request. A nil in sends no body; a nil out
// discards the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var eb server.ErrorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Healthy reports whether the daemon answers /healthz.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Simulate runs one simulation synchronously.
func (c *Client) Simulate(ctx context.Context, req server.SimRequest) (server.SimResult, error) {
	var res server.SimResult
	err := c.do(ctx, http.MethodPost, "/v1/simulate", &req, &res)
	return res, err
}

// CreateJob submits a batch and returns its initial status.
func (c *Client) CreateJob(ctx context.Context, batch server.BatchRequest) (server.JobInfo, error) {
	var info server.JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs", &batch, &info)
	return info, err
}

// Job fetches a job's status; withResults includes per-run outcomes.
func (c *Client) Job(ctx context.Context, id string, withResults bool) (server.JobInfo, error) {
	path := "/v1/jobs/" + url.PathEscape(id)
	if withResults {
		path += "?results=1"
	}
	var info server.JobInfo
	err := c.do(ctx, http.MethodGet, path, nil, &info)
	return info, err
}

// Jobs lists every job the daemon knows.
func (c *Client) Jobs(ctx context.Context) ([]server.JobInfo, error) {
	var out []server.JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// CancelJob aborts a job's remaining runs.
func (c *Client) CancelJob(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil)
}

// WaitJob polls until the job reaches a terminal state (or ctx
// expires) and returns its final status with results.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (server.JobInfo, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		info, err := c.Job(ctx, id, true)
		if err != nil {
			return info, err
		}
		switch info.State {
		case server.JobDone, server.JobFailed, server.JobCancelled:
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-t.C:
		}
	}
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (server.MetricsSnapshot, error) {
	var m server.MetricsSnapshot
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// MetricsProm fetches the daemon's Prometheus text exposition
// (/metrics.prom) and returns the raw body.
func (c *Client) MetricsProm(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics.prom", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var eb server.ErrorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return nil, &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	return io.ReadAll(resp.Body)
}

// StreamEvents subscribes to a job's SSE progress stream, invoking fn
// for every event until the terminal "end" event, stream close, or
// ctx cancellation. fn returning a non-nil error stops the stream.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(server.JobEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var eb server.ErrorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	dec := newSSEDecoder(resp.Body)
	for {
		ev, err := dec.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(ev); err != nil {
			return err
		}
		if ev.Type == "end" {
			return nil
		}
	}
}

// sseDecoder parses the minimal SSE dialect the daemon emits.
type sseDecoder struct {
	r *bufReader
}

func newSSEDecoder(r io.Reader) *sseDecoder { return &sseDecoder{r: newBufReader(r)} }

func (d *sseDecoder) next() (server.JobEvent, error) {
	for {
		line, err := d.r.line()
		if err != nil {
			return server.JobEvent{}, err
		}
		if strings.HasPrefix(line, "data: ") {
			var ev server.JobEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				return server.JobEvent{}, fmt.Errorf("client: bad SSE payload %q: %w", line, err)
			}
			return ev, nil
		}
	}
}

// bufReader is a minimal line reader without bufio's buffer-size
// pitfalls for long data lines.
type bufReader struct {
	r   io.Reader
	buf []byte
}

func newBufReader(r io.Reader) *bufReader { return &bufReader{r: r} }

func (b *bufReader) line() (string, error) {
	for {
		if i := bytes.IndexByte(b.buf, '\n'); i >= 0 {
			line := strings.TrimRight(string(b.buf[:i]), "\r")
			b.buf = b.buf[i+1:]
			return line, nil
		}
		chunk := make([]byte, 4096)
		n, err := b.r.Read(chunk)
		if n > 0 {
			b.buf = append(b.buf, chunk[:n]...)
			continue
		}
		if err != nil {
			if len(b.buf) > 0 {
				line := strings.TrimRight(string(b.buf), "\r")
				b.buf = nil
				return line, nil
			}
			return "", err
		}
	}
}
