// Overhead: speed-transition overhead on a real processor model.
// Runs lpSHE on an XScale-like discrete processor while sweeping the
// voltage-transition stall time, showing that (a) deadlines hold at
// every overhead level thanks to the native 2·SwitchTime slack
// reserve, and (b) the hysteresis guard trades a few percent of
// reclaimed slack for far fewer transitions.
//
//	go run ./examples/overhead
package main

import (
	"fmt"
	"log"

	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

func main() {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(8, 0.7, 5))
	wl := workload.Uniform{Lo: 0.4, Hi: 1, Seed: 5}

	fmt.Printf("task set: %d tasks, U=%.3f; XScale-like levels with transition overhead\n\n",
		ts.N(), ts.Utilization())
	fmt.Println("switch-time   policy         norm-energy  switches/job  misses")

	for _, st := range []float64{0, 0.1, 0.5, 1.0, 2.0} {
		proc := cpu.XScale()
		proc.SwitchTime = st
		proc.SwitchEnergyCoeff = 0.1

		ref, err := sim.Run(sim.Config{
			TaskSet: ts, Processor: proc, Policy: &dvs.NonDVS{}, Workload: wl,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range []sim.Policy{
			core.NewLpSHE(),
			dvs.NewOverheadGuard(core.NewLpSHE()),
		} {
			res, err := sim.Run(sim.Config{
				TaskSet: ts, Processor: proc, Policy: p,
				Workload: wl, StrictDeadlines: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10.1f   %-14s %10.4f %12.2f %7d\n",
				st, res.Policy, res.NormalizedTo(ref),
				float64(res.SpeedSwitches)/float64(res.JobsCompleted),
				res.DeadlineMisses)
		}
	}
}
