// Videophone: a soft-realtime-flavored workload on hard guarantees.
// Video frames vary smoothly in complexity (sinusoidal AET pattern,
// as scene content drifts), audio is nearly constant. The example
// shows per-task energy behavior and how the slack analysis converts
// frame-complexity troughs into low-speed intervals, and compares
// discrete (XScale-like) against continuous speed scaling.
//
//	go run ./examples/videophone
package main

import (
	"fmt"
	"log"

	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// videoWorkload drives the two video tasks with a slow sinusoidal
// complexity drift and the audio tasks with near-constant demand.
type videoWorkload struct {
	video workload.Sinusoidal
	audio workload.Normal
}

func (w videoWorkload) AET(task, index int, wcet float64) float64 {
	if task <= 1 { // video_encode, video_decode
		return w.video.AET(task, index, wcet)
	}
	return w.audio.AET(task, index, wcet)
}

func (w videoWorkload) Name() string { return "videophone(sin video + normal audio)" }

func main() {
	ts := rtm.Videophone()
	wl := videoWorkload{
		video: workload.Sinusoidal{Mean: 0.6, Amp: 0.3, PeriodJobs: 90, Jitter: 0.05, Seed: 11},
		audio: workload.Normal{Mean: 0.8, StdDev: 0.05, Seed: 12},
	}

	fmt.Printf("videophone: %d tasks, U=%.3f\n\n", ts.N(), ts.Utilization())
	fmt.Println("processor        policy      normalized-energy  misses")
	for _, pc := range []struct {
		name string
		proc *cpu.Processor
	}{
		{"continuous", cpu.Continuous(0.1)},
		{"xscale (5 lv)", cpu.XScale()},
		{"uniform4", cpu.UniformLevels(4)},
	} {
		ref, err := sim.Run(sim.Config{
			TaskSet: ts, Processor: pc.proc, Policy: &dvs.NonDVS{},
			Workload: wl, Horizon: 264 * 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range []sim.Policy{&dvs.StaticEDF{}, core.NewLpSHE()} {
			res, err := sim.Run(sim.Config{
				TaskSet: ts, Processor: pc.proc, Policy: p,
				Workload: wl, Horizon: 264 * 20, StrictDeadlines: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %-12s %12.4f %10d\n",
				pc.name, res.Policy, res.NormalizedTo(ref), res.DeadlineMisses)
		}
	}

	fmt.Println("\nall deadlines met: the hard guarantee holds even though the")
	fmt.Println("workload itself is multimedia-shaped (drifting frame complexity).")
}
