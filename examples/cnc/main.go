// CNC: the machine-controller benchmark from the paper family's
// evaluation. Runs the full policy suite on the CNC task set with a
// bursty (bimodal) workload — the fast common path of a control loop
// with occasional heavy iterations — and prints the energy
// comparison plus a Gantt excerpt of the lpSHE schedule.
//
//	go run ./examples/cnc
package main

import (
	"fmt"
	"log"
	"os"

	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/trace"
	"dvsslack/internal/workload"
)

func main() {
	ts := rtm.CNC()
	// Control iterations: usually 30% of WCET, occasionally (10%)
	// the full worst case.
	wl := workload.Bimodal{LightFrac: 0.3, HeavyFrac: 1.0, PHeavy: 0.1, Seed: 7}
	proc := cpu.Continuous(0.1)

	fmt.Printf("CNC controller: %d tasks, U=%.3f, hyperperiod %.1f ms\n\n",
		ts.N(), ts.Utilization(), mustHyper(ts))

	policies := []sim.Policy{
		&dvs.NonDVS{}, &dvs.StaticEDF{}, &dvs.LppsEDF{},
		&dvs.CCEDF{}, &dvs.LAEDF{}, &dvs.DRA{}, core.NewLpSHE(),
	}
	var ref sim.Result
	for i, p := range policies {
		res, err := sim.Run(sim.Config{
			TaskSet:         ts,
			Processor:       proc,
			Policy:          p,
			Workload:        wl,
			StrictDeadlines: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			ref = res
		}
		fmt.Printf("%-10s normalized energy %.4f  switches/job %.2f\n",
			res.Policy, res.NormalizedTo(ref),
			float64(res.SpeedSwitches)/float64(res.JobsCompleted))
	}

	// One hyperperiod of the lpSHE schedule, as a Gantt chart.
	fmt.Printf("\nlpSHE schedule, first hyperperiod (speed in tenths):\n")
	rec := trace.NewRecorder()
	if _, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: proc,
		Policy:    core.NewLpSHE(),
		Workload:  wl,
		Horizon:   mustHyper(ts),
		Observer:  rec,
	}); err != nil {
		log.Fatal(err)
	}
	var names []string
	for _, t := range ts.Tasks {
		names = append(names, t.Name)
	}
	rec.Gantt(os.Stdout, names, mustHyper(ts), 90)
}

func mustHyper(ts *rtm.TaskSet) float64 {
	h, ok := ts.Hyperperiod()
	if !ok {
		log.Fatal("hyperperiod not computable")
	}
	return h
}
