// RM: the fixed-priority side of the simulator substrate. The same
// engine that evaluates the (dynamic-priority) DVS algorithms also
// schedules preemptive rate-monotonic priorities; this example
// cross-checks the analytical response-time bounds against simulated
// worst-case response times, shows an RM-infeasible/EDF-feasible set,
// and demonstrates jitter-aware analysis.
//
//	go run ./examples/rm
package main

import (
	"fmt"
	"log"
	"math"

	"dvsslack/internal/analysis"
	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
)

func main() {
	// The textbook RTA example.
	ts := rtm.NewTaskSet("rta",
		rtm.Task{Name: "fast", WCET: 1, Period: 4},
		rtm.Task{Name: "mid", WCET: 2, Period: 6},
		rtm.Task{Name: "slow", WCET: 3, Period: 13},
	)
	prios := analysis.RateMonotonicPriorities(ts)
	resp, ok := analysis.ResponseTimes(ts, prios)
	fmt.Printf("task set %s: U=%.3f, RM-schedulable=%v\n\n", ts.Name, ts.Utilization(), ok)

	worst := make([]float64, ts.N())
	obs := &responseTracker{worst: worst}
	res, err := sim.Run(sim.Config{
		TaskSet:         ts,
		Processor:       cpu.Continuous(0.1),
		Policy:          &dvs.NonDVS{},
		FixedPriorities: prios,
		Observer:        obs,
		Horizon:         4 * 6 * 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("task  priority  analytical-R  simulated-worst-R")
	for i, t := range ts.Tasks {
		fmt.Printf("%-5s %8d %13.2f %18.2f\n", t.Name, prios[i], resp[i], worst[i])
	}
	fmt.Printf("\njobs=%d misses=%d (simulation confirms the analytical bounds)\n\n",
		res.JobsCompleted, res.DeadlineMisses)

	// EDF vs RM at full utilization: EDF schedules it, RM cannot.
	full := rtm.NewTaskSet("u1",
		rtm.Task{Name: "a", WCET: 2, Period: 4},
		rtm.Task{Name: "b", WCET: 3, Period: 6},
	)
	fmt.Printf("U=1 set: EDF-schedulable=%v (QPA=%v), RM-schedulable=%v\n",
		analysis.EDFSchedulable(full), analysis.QPA(full), analysis.RMSchedulable(full))
	rmRes, err := sim.Run(sim.Config{
		TaskSet:         full,
		Processor:       cpu.Continuous(0.1),
		Policy:          &dvs.NonDVS{},
		FixedPriorities: analysis.RateMonotonicPriorities(full),
	})
	if err != nil {
		log.Fatal(err)
	}
	edfRes, err := sim.Run(sim.Config{
		TaskSet:   full,
		Processor: cpu.Continuous(0.1),
		Policy:    &dvs.NonDVS{},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated misses: RM=%d, EDF=%d\n\n", rmRes.DeadlineMisses, edfRes.DeadlineMisses)

	// Jitter-aware RTA: response bounds inflate with release jitter.
	jit := rtm.NewTaskSet("jitter",
		rtm.Task{Name: "hi", WCET: 1, Period: 4, Jitter: 2},
		rtm.Task{Name: "lo", WCET: 2, Period: 10},
	)
	rj, _ := analysis.ResponseTimes(jit, analysis.RateMonotonicPriorities(jit))
	r0, _ := analysis.ResponseTimes(rtm.NewTaskSet("nojit",
		rtm.Task{Name: "hi", WCET: 1, Period: 4},
		rtm.Task{Name: "lo", WCET: 2, Period: 10},
	), []int{0, 1})
	fmt.Printf("low-priority response bound: %.2f without jitter, %.2f with 50%% jitter on the high task\n",
		r0[1], rj[1])
	if math.IsInf(rj[1], 1) {
		fmt.Println("(unbounded: jitter pushed the task past its deadline window)")
	}
}

// responseTracker records per-task worst observed response times.
type responseTracker struct{ worst []float64 }

func (o *responseTracker) ObserveRelease(float64, *sim.JobState)           {}
func (o *responseTracker) ObserveDispatch(float64, *sim.JobState, float64) {}
func (o *responseTracker) ObserveComplete(t float64, j *sim.JobState, _ bool) {
	if r := t - j.Release; r > o.worst[j.TaskIndex] {
		o.worst[j.TaskIndex] = r
	}
}
func (o *responseTracker) ObserveIdle(float64, float64)  {}
func (o *responseTracker) ObserveSwitch(_, _, _ float64) {}
