// Quickstart: define a periodic task set, run the slack-analysis DVS
// policy against the non-DVS reference on an identical workload, and
// print the energy saving.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dvsslack"
)

func main() {
	// Five periodic tasks (WCET, period) with total worst-case
	// utilization 0.75 and a hyperperiod of 120 time units.
	ts := dvsslack.NewTaskSet("quickstart",
		dvsslack.NewTask("sensor", 1, 4),
		dvsslack.NewTask("control", 2, 12),
		dvsslack.NewTask("telemetry", 2, 15),
		dvsslack.NewTask("logging", 3, 30),
		dvsslack.NewTask("housekeeping", 4, 40),
	)

	// Jobs actually use between 30% and 100% of their WCET; the
	// generator is deterministic, so both runs see the same trace.
	wl := dvsslack.UniformWorkload(0.3, 1, 42)
	proc := dvsslack.ContinuousProcessor(0.1)

	ref, err := dvsslack.Simulate(dvsslack.Config{
		TaskSet: ts, Processor: proc, Policy: dvsslack.NewNonDVS(), Workload: wl,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dvsslack.Simulate(dvsslack.Config{
		TaskSet: ts, Processor: proc, Policy: dvsslack.NewLpSHE(), Workload: wl,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("task set: %d tasks, worst-case utilization %.2f\n", ts.N(), ts.Utilization())
	fmt.Printf("non-DVS : energy %8.3f  (%d jobs, %d deadline misses)\n",
		ref.Energy, ref.JobsCompleted, ref.DeadlineMisses)
	fmt.Printf("lpSHE   : energy %8.3f  (%d jobs, %d deadline misses, %d speed changes)\n",
		res.Energy, res.JobsCompleted, res.DeadlineMisses, res.SpeedSwitches)
	fmt.Printf("saving  : %.1f%%  (normalized energy %.3f)\n",
		100*(1-res.NormalizedTo(ref)), res.NormalizedTo(ref))

	bound := dvsslack.EnergyBound(ts, proc, wl, ref.Time)
	fmt.Printf("clairvoyant static lower bound: normalized %.3f\n", bound/ref.Energy)
}
