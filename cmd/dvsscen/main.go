// Command dvsscen works with declarative scenario documents: versioned
// YAML/JSON descriptions of a task set, a processor, a workload
// timeline, and the assertions a run must satisfy.
//
// Usage:
//
//	dvsscen validate scenarios/*.yaml          # check documents, list every error
//	dvsscen run scenarios/surge-overrun.yaml   # execute locally, report the verdict
//	dvsscen run -json doc.yaml                 # canonical machine-readable verdict
//	dvsscen run -addr http://host:8080 doc.yaml  # execute on a dvsd or dvsfleet
//	dvsscen convert entry.json                 # lift a fuzz corpus entry to a scenario
//	dvsscen convert -format json -out dir entry.json
//
// validate exits 2 on usage errors and 1 when any document fails,
// after printing every validation error (not just the first). run
// exits 1 when any verdict reports ok=false or a document fails to
// execute; with -json the verdict's canonical bytes go to stdout —
// byte-identical to what POST /v1/scenario answers for the same
// document, so the two can be compared with cmp. convert writes the
// scenario form of fuzz corpus entries to stdout or -out.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dvsslack/client"
	"dvsslack/internal/fuzz"
	"dvsslack/internal/obs"
	"dvsslack/internal/scenario"
	"dvsslack/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "validate":
		err = cmdValidate(os.Args[2:], os.Stdout, os.Stderr)
	case "run":
		err = cmdRun(os.Args[2:], os.Stdout, os.Stderr)
	case "convert":
		err = cmdConvert(os.Args[2:], os.Stdout, os.Stderr)
	case "help", "-h", "--help":
		usage(os.Stdout)
		return
	default:
		fmt.Fprintf(os.Stderr, "dvsscen: unknown subcommand %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		if _, harness := err.(failure); !harness {
			fmt.Fprintf(os.Stderr, "dvsscen: %v\n", err)
		}
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `dvsscen works with declarative scenario documents.

Subcommands:
  validate <files...>                 check documents, listing every error
  run [-json] [-addr URL] [-explain] <files...>
                                      execute documents and report verdicts
  convert [-format yaml|json] [-out dir] <entries...>
                                      lift fuzz corpus entries into scenarios

Run 'dvsscen <subcommand> -h' for flags.
`)
}

// failure marks check failures whose diagnostics are already printed;
// main maps them to exit 1 without the "dvsscen:" prefix.
type failure string

func (f failure) Error() string { return string(f) }

// cmdValidate parses every named document and prints every error each
// one carries, file:line-anchored. All files are checked even after
// the first failure.
func cmdValidate(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	quiet := fs.Bool("q", false, "suppress per-file ok lines")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("validate: no documents named")
	}
	bad := 0
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		_, errs := scenario.Parse(path, data)
		if len(errs) > 0 {
			bad++
			for _, e := range errs {
				fmt.Fprintln(stderr, e.Error())
			}
			continue
		}
		if !*quiet {
			fmt.Fprintf(stdout, "%s: ok\n", path)
		}
	}
	if bad > 0 {
		return failure(fmt.Sprintf("%d of %d documents failed validation", bad, fs.NArg()))
	}
	return nil
}

// cmdRun executes documents — locally, or on a remote dvsd/dvsfleet
// when -addr is given (the remote path proves transport byte-identity:
// the bytes printed by -json are exactly the server's response body).
func cmdRun(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit each verdict's canonical JSON instead of text")
	addr := fs.String("addr", "", "execute on this dvsd/dvsfleet base URL instead of locally")
	explain := fs.Bool("explain", false,
		"print a per-policy decision-path summary (staircase / certificate / full-scan / adaptive-cap counts) after each local run")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("run: no documents named")
	}
	if *explain && *addr != "" {
		return fmt.Errorf("run: -explain reads local flight-recorder counters and cannot be combined with -addr")
	}
	var remote *client.Client
	if *addr != "" {
		remote = client.New(*addr)
	}
	failed := 0
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		doc, errs := scenario.Parse(path, data)
		if len(errs) > 0 {
			failed++
			for _, e := range errs {
				fmt.Fprintln(stderr, e.Error())
			}
			continue
		}
		var raw []byte
		if remote != nil {
			raw, err = remote.RunScenario(context.Background(), data)
			if err != nil {
				var ae *client.APIError
				if errors.As(err, &ae) && len(ae.Errors) > 0 {
					for _, msg := range ae.Errors {
						fmt.Fprintln(stderr, msg)
					}
					failed++
					continue
				}
				return fmt.Errorf("%s: %w", path, err)
			}
		} else {
			var (
				specs []string
				fobs  map[string]*obs.FlightObserver
				hook  scenario.ObserverHook
			)
			if *explain {
				fobs = map[string]*obs.FlightObserver{}
				hook = func(spec string, pol sim.Policy) sim.Observer {
					fo := obs.NewFlightObserver(pol)
					specs = append(specs, spec)
					fobs[spec] = fo
					return fo
				}
			}
			v, err := scenario.ExecuteObserved(context.Background(), doc, hook)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			raw = v.JSON()
			if *explain {
				// With -json the canonical verdict owns stdout; the
				// summary moves to stderr so the bytes stay comparable.
				out := stdout
				if *jsonOut {
					out = stderr
				}
				printExplain(out, path, specs, fobs)
			}
		}
		var v scenario.Verdict
		if err := json.Unmarshal(raw, &v); err != nil {
			return fmt.Errorf("%s: decoding verdict: %w", path, err)
		}
		if *jsonOut {
			stdout.Write(raw)
		} else {
			printVerdict(stdout, path, &v)
		}
		if !v.Ok {
			failed++
		}
	}
	if failed > 0 {
		return failure(fmt.Sprintf("%d of %d scenarios failed", failed, fs.NArg()))
	}
	return nil
}

// printExplain renders the per-policy decision-path summary gathered
// by -explain: how many dispatch decisions each policy resolved on
// each analysis path, and the slack credits it harvested. Policies
// that do not implement sim.DecisionExplainer still report their
// dispatch count.
func printExplain(w io.Writer, path string, specs []string, fobs map[string]*obs.FlightObserver) {
	fmt.Fprintf(w, "%s: decision paths\n", path)
	for _, spec := range specs {
		fo := fobs[spec]
		fmt.Fprintf(w, "  explain %-12s decisions=%d", spec, fo.Dispatches)
		if fo.Explains() {
			for p := sim.PathFullScan; p <= sim.PathAdaptiveCap; p++ {
				fmt.Fprintf(w, " %s=%d", p.String(), fo.PathCount(p))
			}
			fmt.Fprintf(w, " credits=%.3f", fo.Credits)
		} else {
			fmt.Fprintf(w, " (no decision provenance)")
		}
		fmt.Fprintln(w)
	}
}

// printVerdict renders the human-readable report for one verdict.
func printVerdict(w io.Writer, path string, v *scenario.Verdict) {
	status := "PASS"
	if !v.Ok {
		status = "FAIL"
	}
	fmt.Fprintf(w, "%s: %s (%s)\n", path, status, v.Scenario)
	for _, p := range v.Policies {
		if p.Err != "" {
			fmt.Fprintf(w, "  %-12s error: %s\n", p.Policy, p.Err)
			continue
		}
		fmt.Fprintf(w, "  %-12s energy=%.4f misses=%d jobs=%d/%d violations=%d\n",
			p.Policy, p.Energy, p.DeadlineMisses, p.JobsCompleted, p.JobsReleased, len(p.Violations))
	}
	for _, a := range v.Assertions {
		mark := "ok"
		if !a.Ok {
			mark = "FAIL"
		}
		name := a.Kind
		if a.Policy != "" {
			name += "(" + a.Policy
			if a.Reference != "" {
				name += "/" + a.Reference
			}
			name += ")"
		}
		fmt.Fprintf(w, "  assert %-28s %s", name, mark)
		if a.Detail != "" {
			fmt.Fprintf(w, "  %s", a.Detail)
		}
		fmt.Fprintln(w)
	}
	if v.Chaos != nil {
		fmt.Fprintf(w, "  chaos seed=%d faults=%v attempts=%v\n", v.Chaos.Seed, v.Chaos.Faults, v.Chaos.Attempts)
	}
}

// cmdConvert lifts fuzz corpus entries into scenario documents whose
// replay reproduces the entry's recorded fingerprint (pinned by the
// generated fingerprint assertion).
func cmdConvert(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	format := fs.String("format", "yaml", "output format: yaml or json")
	outDir := fs.String("out", "", "write one file per entry into this directory instead of stdout")
	fs.Parse(args)
	if *format != "yaml" && *format != "json" {
		return fmt.Errorf("convert: unknown format %q (want yaml or json)", *format)
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("convert: no corpus entries named")
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for _, path := range fs.Args() {
		entry, err := fuzz.LoadEntry(path)
		if err != nil {
			return err
		}
		doc := fuzz.ToScenario(entry)
		var data []byte
		ext := ".yaml"
		if *format == "json" {
			data = scenario.DocJSON(doc)
			ext = ".json"
		} else {
			data = scenario.MarshalYAML(doc)
		}
		// Converted output must itself round-trip the validator; a
		// failure here is a bug, not a user error.
		if _, errs := scenario.Parse(path, data); len(errs) > 0 {
			msgs := make([]string, len(errs))
			for i, e := range errs {
				msgs[i] = e.Error()
			}
			return fmt.Errorf("convert: %s produced an invalid scenario:\n%s", path, strings.Join(msgs, "\n"))
		}
		if *outDir == "" {
			stdout.Write(data)
			continue
		}
		base := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		dst := filepath.Join(*outDir, base+ext)
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s -> %s\n", path, dst)
	}
	return nil
}
