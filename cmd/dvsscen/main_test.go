package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvsslack/internal/scenario"
	"dvsslack/internal/server"
)

const goodDoc = `version: 1
name: cli-smoke
policies: [lpshe, nondvs]
tasks:
  - name: A
    wcet: 1
    period: 5
  - name: B
    wcet: 2
    period: 10
workload:
  kind: constant
  frac: 0.6
assertions:
  - kind: no_deadline_misses
  - kind: audit_clean
`

const badDoc = `version: 9
name: bad doc
policies: [nope]
tasks:
  - name: A
    wcet: 0
    period: 5
assertions:
  - kind: bogus
`

func writeDoc(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidateGoodAndBad(t *testing.T) {
	good := writeDoc(t, "good.yaml", goodDoc)
	var out, errOut bytes.Buffer
	if err := cmdValidate([]string{good}, &out, &errOut); err != nil {
		t.Fatalf("good doc failed: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("no ok line: %q", out.String())
	}

	bad := writeDoc(t, "bad.yaml", badDoc)
	out.Reset()
	errOut.Reset()
	err := cmdValidate([]string{bad, good}, &out, &errOut)
	if err == nil {
		t.Fatal("bad doc validated")
	}
	if _, isFailure := err.(failure); !isFailure {
		t.Fatalf("error %v is not a failure", err)
	}
	// Every error is listed, each anchored to the bad file.
	for _, want := range []string{"version must be 1", "nope", "WCET", "unknown assertion kind"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errOut.String())
		}
	}
	// The good file is still checked after the bad one fails.
	if !strings.Contains(out.String(), "good.yaml: ok") {
		t.Fatalf("good file skipped after failure:\n%s", out.String())
	}
}

func TestRunLocalJSON(t *testing.T) {
	p := writeDoc(t, "doc.yaml", goodDoc)
	var out, errOut bytes.Buffer
	if err := cmdRun([]string{"-json", p}, &out, &errOut); err != nil {
		t.Fatalf("run: %v\n%s", err, errOut.String())
	}
	doc, _ := scenario.Parse("t", []byte(goodDoc))
	v, err := scenario.Execute(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), v.JSON()) {
		t.Fatalf("-json output differs from canonical verdict bytes:\n%s\n---\n%s", out.Bytes(), v.JSON())
	}
}

func TestRunText(t *testing.T) {
	p := writeDoc(t, "doc.yaml", goodDoc)
	var out, errOut bytes.Buffer
	if err := cmdRun([]string{p}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PASS", "lpshe", "nondvs", "assert"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFailingAssertionExitsNonzero(t *testing.T) {
	failing := strings.Replace(goodDoc, "kind: no_deadline_misses",
		"kind: energy_ratio_max\n    policy: lpshe\n    reference: nondvs\n    max: 0.0001", 1)
	p := writeDoc(t, "doc.yaml", failing)
	var out, errOut bytes.Buffer
	err := cmdRun([]string{p}, &out, &errOut)
	if err == nil {
		t.Fatal("failing assertion exited zero")
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("report does not say FAIL:\n%s", out.String())
	}
}

// TestRunRemote pins -addr byte-identity: the remote verdict printed
// by -json matches the local run exactly.
func TestRunRemote(t *testing.T) {
	s := server.New(server.Config{Workers: 2})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Shutdown(context.Background())
	})
	p := writeDoc(t, "doc.yaml", goodDoc)
	var local, remote, errOut bytes.Buffer
	if err := cmdRun([]string{"-json", p}, &local, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-json", "-addr", hs.URL, p}, &remote, &errOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), remote.Bytes()) {
		t.Fatalf("remote verdict differs from local:\n%s\n---\n%s", remote.Bytes(), local.Bytes())
	}
}

// TestConvert lifts the real shipped corpus and replays each
// conversion to its recorded fingerprint (the generated fingerprint
// assertion does the checking).
func TestConvert(t *testing.T) {
	entries, err := filepath.Glob("../../internal/fuzz/testdata/corpus/*.json")
	if err != nil || len(entries) == 0 {
		t.Fatalf("no corpus entries found: %v", err)
	}
	outDir := t.TempDir()
	var out, errOut bytes.Buffer
	if err := cmdConvert(append([]string{"-out", outDir}, entries...), &out, &errOut); err != nil {
		t.Fatalf("convert: %v\n%s", err, errOut.String())
	}
	converted, _ := filepath.Glob(filepath.Join(outDir, "*.yaml"))
	if len(converted) != len(entries) {
		t.Fatalf("converted %d of %d entries", len(converted), len(entries))
	}
	out.Reset()
	errOut.Reset()
	if err := cmdRun(converted, &out, &errOut); err != nil {
		t.Fatalf("replaying converted corpus: %v\n%s\n%s", err, out.String(), errOut.String())
	}
}

func TestConvertJSONFormat(t *testing.T) {
	entries, _ := filepath.Glob("../../internal/fuzz/testdata/corpus/*.json")
	if len(entries) == 0 {
		t.Skip("no corpus entries")
	}
	var out, errOut bytes.Buffer
	if err := cmdConvert([]string{"-format", "json", entries[0]}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if _, errs := scenario.Parse("converted", out.Bytes()); len(errs) > 0 {
		t.Fatalf("JSON conversion does not validate: %v", errs)
	}
}
