// Command dvsfleet is the cluster coordinator: it fronts N dvsd
// workers with the same HTTP/JSON API a single daemon serves, routing
// each scenario to a worker by consistent hash of its canonical key
// (cache affinity), health-checking the fleet via /readyz, failing
// keys over from unreachable nodes, and fanning batch jobs out across
// every worker with an ordered, deterministic merge.
//
// Usage:
//
//	dvsfleet -embedded -workers 3                 # self-contained fleet (in-process dvsd workers)
//	dvsfleet -join 127.0.0.1:8081,127.0.0.1:8082  # front existing dvsd daemons
//	dvsfleet -addr 127.0.0.1:0 -embedded          # pick a free port (logged)
//
// Existing clients work unchanged against the coordinator address:
//
//	dvsexp -exp f3 -addr <fleet>       # experiment grid fans out across the fleet
//	dvshammer -addr <fleet> -n 200     # load through the router
//
// Endpoints: the full dvsd API (POST /v1/simulate, the /v1/jobs
// family incl. SSE, /v1/policies, /metrics, /metrics.prom, /healthz,
// /readyz) plus the cluster plane:
//
//	GET  /v1/cluster                       topology and worker health
//	POST /v1/cluster/cordon?worker=addr    remove a worker from the ring
//	POST /v1/cluster/uncordon?worker=addr  re-admit it
//	POST /v1/cluster/kill?worker=addr      hard-stop a worker (embedded mode only; failover testing)
//
// SIGINT/SIGTERM drain gracefully: the listener closes, running fleet
// jobs get -drain-timeout to finish, then embedded workers (if any)
// drain in turn.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dvsslack/internal/cluster"
	"dvsslack/internal/obs"
	"dvsslack/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "coordinator listen address (host:port; port 0 picks a free port)")
		embedded = flag.Bool("embedded", false, "launch an in-process worker fleet instead of joining external daemons")
		workers  = flag.Int("workers", 3, "embedded worker count (with -embedded)")
		join     = flag.String("join", "", "comma-separated dvsd worker addresses to front (without -embedded)")
		interval = flag.Duration("health-interval", 500*time.Millisecond, "active /readyz probe period")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain deadline")

		workerPool  = flag.Int("worker-pool", 0, "per-embedded-worker simulation pool size (0 = NumCPU)")
		workerCache = flag.Int("worker-cache", 4096, "per-embedded-worker result cache entries (0 disables)")
		traceBuf    = flag.Int("trace-buffer", 0,
			"record spans into rings of this many entries (coordinator and, with -embedded, each worker), served at /debug/trace (0 = off)")
		logCfg obs.LogConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logCfg.New(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvsfleet: %v\n", err)
		os.Exit(2)
	}

	cfg := cluster.Config{HealthInterval: *interval, Logger: logger}
	if *traceBuf > 0 {
		cfg.Tracer = obs.NewTracer("dvsfleet", *traceBuf)
	}
	var embeddedFleet []*cluster.EmbeddedWorker
	switch {
	case *embedded && *join != "":
		fmt.Fprintln(os.Stderr, "dvsfleet: -embedded and -join are mutually exclusive")
		os.Exit(2)
	case *embedded:
		cs := *workerCache
		if cs == 0 {
			cs = -1 // server.Config: 0 means default, -1 disables
		}
		wcfg := server.Config{
			Workers:   *workerPool,
			CacheSize: cs,
			Logger:    logger.With("component", "worker"),
		}
		if *traceBuf > 0 {
			// Template ring: StartEmbedded clones it per worker.
			wcfg.Tracer = obs.NewTracer("dvsd", *traceBuf)
		}
		embeddedFleet, err = cluster.StartEmbedded(*workers, wcfg)
		if err != nil {
			logger.Error("dvsfleet: embedded fleet failed to start", "err", err)
			os.Exit(1)
		}
		cfg.Workers = cluster.Addrs(embeddedFleet)
		cfg.Kill = cluster.KillFunc(embeddedFleet)
		logger.Info("dvsfleet: embedded fleet up", "workers", strings.Join(cfg.Workers, ","))
	case *join != "":
		for _, a := range strings.Split(*join, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.Workers = append(cfg.Workers, a)
			}
		}
	}
	if len(cfg.Workers) == 0 {
		fmt.Fprintln(os.Stderr, "dvsfleet: no workers (use -embedded or -join host:port,...)")
		os.Exit(2)
	}

	coord := cluster.New(cfg)
	coord.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("dvsfleet: listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: coord.Handler()}
	// The "listening on <addr>" phrase is load-bearing: verify.sh and
	// operators' scripts extract the bound port from it.
	logger.Info(fmt.Sprintf("dvsfleet: listening on %s (%d workers)", ln.Addr(), len(cfg.Workers)),
		"addr", ln.Addr().String(), "workers", len(cfg.Workers), "embedded", *embedded)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		logger.Info("dvsfleet: draining", "signal", sig.String(), "deadline", drain.String())
	case err := <-errc:
		logger.Error("dvsfleet: serve failed", "err", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting HTTP, drain coordinator jobs, then drain the
	// embedded workers (they must outlive the jobs that run on them).
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("dvsfleet: http shutdown", "err", err)
	}
	failed := false
	if err := coord.Shutdown(ctx); err != nil {
		logger.Error("dvsfleet: coordinator drain incomplete", "err", err)
		failed = true
	}
	for _, w := range embeddedFleet {
		if err := w.Drain(ctx); err != nil {
			logger.Error("dvsfleet: worker drain incomplete", "worker", w.Addr(), "err", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("dvsfleet: drained, bye")
}
