// Command dvsexp regenerates the paper's tables and figures (see
// DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	dvsexp -exp f3            # one experiment
//	dvsexp -exp all           # the whole evaluation
//	dvsexp -exp t2 -csv       # CSV output for post-processing
//	dvsexp -exp f3 -quick     # reduced replication for a fast look
//	dvsexp -exp t2 -addr :8080  # farm runs out to a dvsd daemon
//	dvsexp -exp f3 -progress  # log per-cell completion to stderr
//	dvsexp -list              # list experiment IDs
//
// Experiment IDs: t1 f3 f4 f5 t2 f6 f7 t3 t4 f8.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dvsslack/client"
	"dvsslack/internal/experiment"
	"dvsslack/internal/obs"
	"dvsslack/internal/server"
	"dvsslack/internal/sim"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (t1, f3, f4, f5, t2, f6, f7, t3, t4, f8) or 'all'")
		quick    = flag.Bool("quick", false, "reduced replication count for a fast run")
		seeds    = flag.Int("seeds", 0, "override the number of random task sets per point")
		seed0    = flag.Uint64("seed", 0, "base seed for the pseudo-random streams")
		csv      = flag.Bool("csv", false, "emit CSV instead of tables and charts")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		addr     = flag.String("addr", "", "dvsd daemon address; runs execute remotely (and hit its result cache) instead of in-process")
		workers  = flag.Int("workers", 0, "simulation cells run concurrently (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
		progress = flag.Bool("progress", false, "log per-cell completion from the parallel harness to stderr")
		logCfg   obs.LogConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logCfg.New(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvsexp: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := experiment.Options{Quick: *quick, Seeds: *seeds, Seed0: *seed0, Workers: *workers}
	if *addr != "" {
		c := client.New(*addr)
		if err := c.Healthy(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "dvsexp: daemon at %s unreachable: %v\n", *addr, err)
			os.Exit(1)
		}
		opts.Exec = remoteExec(c)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiment.IDs()
	}
	for _, id := range ids {
		if *progress {
			id := id
			opts.Progress = func(done, total int) {
				logger.Info("cell done", "exp", id, "done", done, "total", total)
			}
			logger.Info("experiment start", "exp", id, "workers", opts.Workers)
		}
		r, err := experiment.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvsexp: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			r.PrintCSV(os.Stdout)
		} else {
			r.Print(os.Stdout)
		}
	}
}

// remoteExec returns an experiment executor that ships each run to the
// daemon. Configurations without a wire form (custom policies,
// observers) fall back to in-process execution, so every experiment
// works unchanged with -addr.
func remoteExec(c *client.Client) experiment.Exec {
	return func(cfg sim.Config) (sim.Result, error) {
		req, err := server.RequestFromConfig(cfg)
		if err != nil {
			return sim.Run(cfg)
		}
		res, err := c.Simulate(context.Background(), req)
		if err != nil {
			return sim.Result{}, fmt.Errorf("dvsexp: remote run: %w", err)
		}
		return res.Sim(), nil
	}
}
