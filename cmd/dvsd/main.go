// Command dvsd is the simulation daemon: an HTTP/JSON service that
// runs DVS-EDF simulations on a bounded worker pool, with an async
// batch-job API, an LRU result cache, and a /metrics endpoint.
//
// Usage:
//
//	dvsd                                  # listen on :8080, NumCPU workers
//	dvsd -addr 127.0.0.1:9090 -workers 8
//	dvsd -addr 127.0.0.1:0                # pick a free port (logged)
//
// Endpoints (see docs/api.md):
//
//	POST /v1/simulate            one run, synchronous
//	POST /v1/jobs                batch run/sweep, async
//	GET  /v1/jobs                job listing
//	GET  /v1/jobs/{id}           job status (+ ?results=1)
//	GET  /v1/jobs/{id}/events    SSE progress stream
//	DELETE /v1/jobs/{id}         cancel
//	GET  /v1/policies            policy registry
//	GET  /metrics                JSON metrics snapshot
//	GET  /healthz                liveness
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, jobs
// in flight get -drain-timeout to finish, then stragglers are
// cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dvsslack/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers   = flag.Int("workers", 0, "simulation worker count (0 = NumCPU)")
		queue     = flag.Int("queue", 0, "pending-run queue depth (0 = workers*64)")
		cacheSize = flag.Int("cache", 4096, "result cache entries (0 disables)")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain deadline")
	)
	flag.Parse()

	cs := *cacheSize
	if cs == 0 {
		cs = -1 // Config: 0 means default, -1 disables
	}
	srv := server.New(server.Config{Workers: *workers, QueueDepth: *queue, CacheSize: cs})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dvsd: listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("dvsd: listening on %s (%d workers)", ln.Addr(), srv.Workers())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		log.Printf("dvsd: %s received, draining (deadline %s)", sig, *drain)
	case err := <-errc:
		log.Fatalf("dvsd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting HTTP first, then drain the simulation backlog.
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("dvsd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("dvsd: drain incomplete: %v", err)
		os.Exit(1)
	}
	fmt.Println("dvsd: drained, bye")
}
