// Command dvsd is the simulation daemon: an HTTP/JSON service that
// runs DVS-EDF simulations on a bounded worker pool, with an async
// batch-job API, an LRU result cache, and metrics endpoints.
//
// Usage:
//
//	dvsd                                  # listen on :8080, NumCPU workers
//	dvsd -addr 127.0.0.1:9090 -workers 8
//	dvsd -addr 127.0.0.1:0                # pick a free port (logged)
//	dvsd -pprof -log-level debug -log-format json
//	dvsd -request-timeout 30s -admit 64   # resilience knobs (docs/resilience.md)
//	dvsd -chaos 42                        # deterministic fault injection (testing)
//
// Endpoints (see docs/api.md and docs/observability.md):
//
//	POST /v1/simulate                one run, synchronous
//	POST /v1/jobs                    batch run/sweep, async
//	GET  /v1/jobs                    job listing
//	GET  /v1/jobs/{id}               job status (+ ?results=1)
//	GET  /v1/jobs/{id}/events        SSE progress stream
//	DELETE /v1/jobs/{id}             cancel
//	POST /v1/jobs/{id}/checkpoint    pause mid-simulation, get snapshot doc
//	POST /v1/jobs/restore            resume a checkpoint document
//	GET  /v1/policies                policy registry
//	GET  /metrics                    JSON metrics snapshot
//	GET  /metrics.prom               Prometheus text exposition
//	GET  /debug/pprof/*              profiling (with -pprof)
//	GET  /healthz                    liveness
//	GET  /readyz                     readiness (drain/saturation aware)
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, and
// jobs in flight get -drain-timeout to finish. What happens to the
// stragglers depends on -checkpoint-dir: with one set they are
// checkpointed mid-simulation (and recovered on the next start from
// the same directory — see docs/checkpoints.md); without, they are
// cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dvsslack/internal/obs"
	"dvsslack/internal/resilience"
	"dvsslack/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers   = flag.Int("workers", 0, "simulation worker count (0 = NumCPU)")
		queue     = flag.Int("queue", 0, "pending-run queue depth (0 = workers*64)")
		cacheSize = flag.Int("cache", 4096, "result cache entries (0 disables)")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain deadline")
		pprof     = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")

		reqTimeout = flag.Duration("request-timeout", 60*time.Second,
			"per-request deadline; clients may tighten it with X-Request-Deadline (0 = unbounded)")
		admit = flag.Int("admit", 0,
			"max concurrently admitted synchronous simulations; excess is shed with 429 (0 = workers+queue)")
		sseTimeout = flag.Duration("sse-write-timeout", 5*time.Second,
			"per-event write deadline on SSE job streams; slow consumers are dropped")
		chaosSeed = flag.Uint64("chaos", 0,
			"enable deterministic fault injection with this seed (testing only; 0 = off)")
		chaosDelay = flag.Duration("chaos-max-delay", 25*time.Millisecond,
			"upper bound of chaos-injected delays (with -chaos)")
		traceBuf = flag.Int("trace-buffer", 0,
			"record spans into a ring of this many entries, served at /debug/trace (0 = tracing off; header propagation always on)")
		flight = flag.Int("flight", 4096,
			"decision flight-recorder ring entries, served at /debug/flightrecorder (-1 disables)")
		ckptDir = flag.String("checkpoint-dir", "",
			"directory for durable job checkpoints: drain checkpoints unfinished jobs here and the next start resumes them (empty = off)")
		ckptInterval = flag.Duration("checkpoint-interval", 0,
			"auto-checkpoint running jobs to -checkpoint-dir on this period, bounding crash loss (0 = drain-time only)")
		logCfg obs.LogConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logCfg.New(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvsd: %v\n", err)
		os.Exit(2)
	}

	cs := *cacheSize
	if cs == 0 {
		cs = -1 // Config: 0 means default, -1 disables
	}
	var chaos *resilience.ChaosConfig
	if *chaosSeed != 0 {
		cc := resilience.DefaultChaos(*chaosSeed)
		cc.MaxDelay = *chaosDelay
		chaos = &cc
		logger.Warn("dvsd: CHAOS MODE — injecting deterministic faults", "seed", *chaosSeed,
			"max_delay", chaosDelay.String())
	}
	var tracer *obs.Tracer
	if *traceBuf > 0 {
		tracer = obs.NewTracer("dvsd", *traceBuf)
	}
	srv := server.New(server.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheSize:          cs,
		EnablePprof:        *pprof,
		Logger:             logger,
		RequestTimeout:     *reqTimeout,
		AdmitLimit:         *admit,
		SSEWriteTimeout:    *sseTimeout,
		Chaos:              chaos,
		Tracer:             tracer,
		FlightRecorder:     *flight,
		CheckpointDir:      *ckptDir,
		CheckpointInterval: *ckptInterval,
	})
	if *ckptDir != "" {
		n, err := srv.RecoverCheckpoints()
		if err != nil {
			logger.Warn("dvsd: checkpoint recovery incomplete", "dir", *ckptDir, "err", err)
		}
		if n > 0 {
			logger.Info("dvsd: recovered checkpointed jobs", "dir", *ckptDir, "jobs", n)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("dvsd: listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	// The "listening on <addr>" phrase is load-bearing: verify.sh and
	// operators' scripts extract the bound port from it.
	logger.Info(fmt.Sprintf("dvsd: listening on %s (%d workers)", ln.Addr(), srv.Workers()),
		"addr", ln.Addr().String(), "workers", srv.Workers(), "pprof", *pprof)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		logger.Info("dvsd: draining", "signal", sig.String(), "deadline", drain.String())
	case err := <-errc:
		logger.Error("dvsd: serve failed", "err", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting HTTP first, then drain the simulation backlog.
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("dvsd: http shutdown", "err", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		// With a checkpoint directory, a blown drain deadline is a
		// clean outcome: the stragglers were checkpointed to disk and
		// the next start resumes them.
		if *ckptDir != "" && errors.Is(err, context.DeadlineExceeded) {
			logger.Info("dvsd: unfinished jobs checkpointed", "dir", *ckptDir)
		} else {
			logger.Error("dvsd: drain incomplete", "err", err)
			os.Exit(1)
		}
	}
	fmt.Println("dvsd: drained, bye")
}
