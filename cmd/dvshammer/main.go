// Command dvshammer drives a dvsd daemon with a concurrent simulation
// workload through the self-healing client and fails loudly if any
// request error survives the retry layer. It is the smoke-test rig
// for chaos mode (dvsd -chaos <seed>): a run that exits 0 proves the
// client rode out every injected delay, error, drop, and truncation.
//
// Usage:
//
//	dvshammer -addr 127.0.0.1:8080 -n 50 -c 4 -seed 7
//
// Exit status: 0 when every request succeeded, 1 otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dvsslack/client"
	"dvsslack/internal/resilience"
	"dvsslack/internal/rtm"
	"dvsslack/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "dvsd address")
		n       = flag.Int("n", 50, "total simulation requests")
		conc    = flag.Int("c", 4, "concurrent request workers")
		seed    = flag.Uint64("seed", 7, "retry-jitter seed and workload seed base")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall run deadline")
		policy  = flag.String("policy", "lpshe", "DVS policy to simulate")
	)
	flag.Parse()
	if *n < 1 || *conc < 1 {
		fmt.Fprintln(os.Stderr, "dvshammer: -n and -c must be >= 1")
		os.Exit(2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	c := client.New(*addr).WithRetry(client.RetryPolicy{
		MaxAttempts: 10,
		Backoff:     resilience.Backoff{Base: 5 * time.Millisecond, Max: 250 * time.Millisecond},
		Budget:      4 * *n,
		// The hammer's job is to outlast every injected fault, not to
		// fail fast, so the breaker threshold sits out of reach.
		BreakerThreshold: 1 << 30,
		Seed:             *seed,
	})
	if err := c.Healthy(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dvshammer: daemon not healthy at %s: %v\n", *addr, err)
		os.Exit(1)
	}

	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		failed atomic.Int64
	)
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n || ctx.Err() != nil {
					return
				}
				req := server.SimRequest{
					TaskSet: rtm.Quickstart(),
					Policy:  *policy,
					// Distinct workload seeds force fresh simulations, so
					// the hammer exercises the pool, not just the cache.
					Workload: server.WorkloadSpec{Kind: "uniform", Lo: 0.5, Hi: 1, Seed: *seed + uint64(i)},
				}
				res, err := c.Simulate(ctx, req)
				if err != nil {
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "dvshammer: request %d failed: %v\n", i, err)
					continue
				}
				if res.Energy <= 0 {
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "dvshammer: request %d returned degenerate energy %v\n", i, res.Energy)
				}
			}
		}()
	}
	wg.Wait()

	st := c.RetryStats()
	fmt.Printf("dvshammer: %d requests in %v: %d failed, %d attempts, %d retries, %d budget-exhausted, breaker %s\n",
		*n, time.Since(start).Round(time.Millisecond), failed.Load(),
		st.Attempts, st.Retries, st.BudgetExhausted, c.BreakerState())
	if failed.Load() > 0 || ctx.Err() != nil {
		os.Exit(1)
	}
}
