// Command dvshammer drives a dvsd daemon — or a whole dvsfleet — with
// a concurrent simulation workload through the self-healing client
// and fails loudly if any request error survives the retry layer. It
// is the smoke-test rig for chaos mode (dvsd -chaos <seed>) and for
// the cluster coordinator: a run that exits 0 proves the client rode
// out every injected delay, error, drop, and truncation.
//
// Usage:
//
//	dvshammer -addr 127.0.0.1:8080 -n 50 -c 4 -seed 7
//	dvshammer -addr host1:8080,host2:8080 -n 200     # round-robin over targets
//	dvshammer -addr 127.0.0.1:8090 -n 100 -json      # machine-readable summary
//
// With multiple comma-separated -addr targets, requests round-robin
// across them (each target gets its own client, so per-target retry
// budgets and breakers stay independent). -json emits the summary as
// one JSON object on stdout for scripted smokes (verify.sh).
//
// Exit status: 0 when every request succeeded, 1 otherwise.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dvsslack/client"
	"dvsslack/internal/resilience"
	"dvsslack/internal/rtm"
	"dvsslack/internal/server"
)

// summary is the -json output: one line a script can parse instead of
// scraping the human text.
type summary struct {
	Targets         []string `json:"targets"`
	Requests        int      `json:"requests"`
	Failed          int64    `json:"failed"`
	DurationMS      int64    `json:"duration_ms"`
	RPS             float64  `json:"rps"`
	Attempts        uint64   `json:"attempts"`
	Retries         uint64   `json:"retries"`
	BudgetExhausted uint64   `json:"budget_exhausted"`
	TimedOut        bool     `json:"timed_out,omitempty"`
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "dvsd or dvsfleet address(es), comma-separated for round-robin")
		n       = flag.Int("n", 50, "total simulation requests")
		conc    = flag.Int("c", 4, "concurrent request workers")
		seed    = flag.Uint64("seed", 7, "retry-jitter seed and workload seed base")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall run deadline")
		policy  = flag.String("policy", "lpshe", "DVS policy to simulate")
		jsonOut = flag.Bool("json", false, "emit the summary as JSON on stdout")
	)
	flag.Parse()
	if *n < 1 || *conc < 1 {
		fmt.Fprintln(os.Stderr, "dvshammer: -n and -c must be >= 1")
		os.Exit(2)
	}
	var targets []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			targets = append(targets, a)
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "dvshammer: -addr must name at least one target")
		os.Exit(2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	clients := make([]*client.Client, len(targets))
	for i, target := range targets {
		clients[i] = client.New(target).WithRetry(client.RetryPolicy{
			MaxAttempts: 10,
			Backoff:     resilience.Backoff{Base: 5 * time.Millisecond, Max: 250 * time.Millisecond},
			Budget:      4 * *n,
			// The hammer's job is to outlast every injected fault, not to
			// fail fast, so the breaker threshold sits out of reach.
			BreakerThreshold: 1 << 30,
			Seed:             *seed + uint64(i),
		})
		if err := clients[i].Healthy(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dvshammer: daemon not healthy at %s: %v\n", target, err)
			os.Exit(1)
		}
	}

	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		failed atomic.Int64
	)
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n || ctx.Err() != nil {
					return
				}
				req := server.SimRequest{
					TaskSet: rtm.Quickstart(),
					Policy:  *policy,
					// Distinct workload seeds force fresh simulations, so
					// the hammer exercises the pool, not just the cache.
					Workload: server.WorkloadSpec{Kind: "uniform", Lo: 0.5, Hi: 1, Seed: *seed + uint64(i)},
				}
				// Round-robin by request index, so the spread over targets
				// is even regardless of worker scheduling.
				res, err := clients[i%len(clients)].Simulate(ctx, req)
				if err != nil {
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "dvshammer: request %d failed: %v\n", i, err)
					continue
				}
				if res.Energy <= 0 {
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "dvshammer: request %d returned degenerate energy %v\n", i, res.Energy)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := summary{
		Targets:    targets,
		Requests:   *n,
		Failed:     failed.Load(),
		DurationMS: elapsed.Milliseconds(),
		TimedOut:   ctx.Err() != nil,
	}
	if s := elapsed.Seconds(); s > 0 {
		sum.RPS = float64(*n) / s
	}
	var breakers []string
	for _, c := range clients {
		st := c.RetryStats()
		sum.Attempts += uint64(st.Attempts)
		sum.Retries += uint64(st.Retries)
		sum.BudgetExhausted += uint64(st.BudgetExhausted)
		breakers = append(breakers, c.BreakerState())
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.Encode(sum)
	} else {
		fmt.Printf("dvshammer: %d requests to %d target(s) in %v: %d failed, %d attempts, %d retries, %d budget-exhausted, breaker %s\n",
			sum.Requests, len(targets), elapsed.Round(time.Millisecond), sum.Failed,
			sum.Attempts, sum.Retries, sum.BudgetExhausted, strings.Join(breakers, ","))
	}
	if sum.Failed > 0 || sum.TimedOut {
		os.Exit(1)
	}
}
