package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvsslack/internal/fuzz"
	"dvsslack/internal/rtm"
	"dvsslack/internal/server"
)

// corpusDir resolves the shipped corpus relative to this package's
// source directory (tests run with the package dir as cwd).
const corpusDir = "../../internal/fuzz/testdata/corpus"

func TestCorpusMode(t *testing.T) {
	var out, errw bytes.Buffer
	err := run(options{Corpus: corpusDir, Verbose: true}, &out, &errw)
	if err != nil {
		t.Fatalf("corpus replay failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "entries reproduced") {
		t.Errorf("missing summary line in output:\n%s", out.String())
	}
}

func TestSelfTestMode(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(options{SelfTest: true}, &out, &errw); err != nil {
		t.Fatalf("self-test failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "mutations caught") {
		t.Errorf("missing self-test summary:\n%s", out.String())
	}
}

func TestFuzzMode(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(options{Fuzz: 5, Seed: 3}, &out, &errw); err != nil {
		t.Fatalf("fuzz campaign failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "5 scenarios") {
		t.Errorf("missing fuzz summary:\n%s", out.String())
	}
}

// TestReplayModeByteIdentical replays the same reproducer twice and
// requires byte-identical reports — the corpus determinism guarantee
// surfaced at the CLI level.
func TestReplayModeByteIdentical(t *testing.T) {
	path := filepath.Join(corpusDir, "repro-overload-min.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	var out1, out2, errw bytes.Buffer
	if err := run(options{Replay: path}, &out1, &errw); err != nil {
		t.Fatalf("replay failed: %v\n%s", err, out1.String())
	}
	if err := run(options{Replay: path}, &out2, &errw); err != nil {
		t.Fatalf("second replay failed: %v", err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("replay output differs byte-for-byte across two runs")
	}
	if !strings.Contains(out1.String(), "deadline-miss") {
		t.Errorf("reproducer report lacks its deadline-miss violations:\n%s", out1.String())
	}
}

// TestReplayMismatchExits checks a reproducer whose fingerprint no
// longer matches makes the run fail.
func TestReplayMismatchExits(t *testing.T) {
	dir := t.TempDir()
	entry := fuzz.CorpusEntry{
		Scenario: fuzz.Scenario{
			Name: "clean",
			TaskSet: &rtm.TaskSet{Tasks: []rtm.Task{
				{Name: "T1", WCET: 1, Period: 10},
			}},
			Processor: server.ProcessorSpec{SMin: 0.1},
			Workload:  server.WorkloadSpec{Kind: "worst-case"},
			Policies:  []string{"lpshe"},
		},
		Expect: []string{"lpshe/deadline-miss"}, // wrong: the run is clean
	}
	path := filepath.Join(dir, "stale.json")
	if err := fuzz.WriteEntry(path, entry); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if err := run(options{Replay: path}, &out, &errw); err == nil {
		t.Fatal("run accepted a reproducer whose fingerprint did not match")
	}
}
