// Command dvscheck audits the simulator: it replays the scenario
// corpus, fuzzes freshly generated configurations under the
// internal/audit oracle, replays single reproducer files, and runs
// the auditor's mutation self-test.
//
// Usage:
//
//	dvscheck -corpus internal/fuzz/testdata/corpus   # replay the corpus
//	dvscheck -fuzz 200 -seed 1                       # fuzz 200 configs
//	dvscheck -fuzz 200 -out /tmp/repro               # + write reproducers
//	dvscheck -replay repro-overload-min.json         # replay one file
//	dvscheck -selftest                               # prove the oracle can fail
//
// Modes compose: flags given together run in the order selftest,
// corpus, replay, fuzz. With no mode flags, dvscheck runs the
// default corpus (internal/fuzz/testdata/corpus, resolved against
// the working directory) plus the self-test.
//
// Exit status is 0 only when every requested check passes: corpus
// entries reproduce exactly their recorded fingerprints, fuzzing
// finds no violations, and every self-test mutation is caught.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"dvsslack/internal/audit"
	"dvsslack/internal/fuzz"
	"dvsslack/internal/obs"
)

// DefaultCorpus is the shipped corpus path, relative to the repo
// root.
const DefaultCorpus = "internal/fuzz/testdata/corpus"

// options collects the parsed command line; run consumes it.
type options struct {
	Corpus   string
	Fuzz     int
	Seed     uint64
	Out      string
	Replay   string
	SelfTest bool
	JSON     bool
	Verbose  bool

	// Log receives phase-level diagnostics (nil = discard); main wires
	// the shared obs logger configured by -log-level/-log-format.
	Log *slog.Logger
}

func main() {
	var o options
	flag.StringVar(&o.Corpus, "corpus", "", "replay every *.json scenario in this directory")
	flag.IntVar(&o.Fuzz, "fuzz", 0, "fuzz this many generated configurations")
	flag.Uint64Var(&o.Seed, "seed", 1, "fuzzing campaign seed")
	flag.StringVar(&o.Out, "out", "", "directory for shrunk reproducers of fuzz failures")
	flag.StringVar(&o.Replay, "replay", "", "replay one reproducer file and print its report")
	flag.BoolVar(&o.SelfTest, "selftest", false, "run the auditor's mutation self-test")
	flag.BoolVar(&o.JSON, "json", false, "emit machine-readable JSON instead of text")
	flag.BoolVar(&o.Verbose, "v", false, "report every scenario, not just failures")
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logCfg.New(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvscheck: %v\n", err)
		os.Exit(2)
	}
	o.Log = logger

	if err := run(o, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "dvscheck: %v\n", err)
		os.Exit(1)
	}
}

// failure marks check failures (as opposed to harness errors); main
// maps both to exit 1 but harness errors get the "dvscheck:" prefix.
type failure string

func (f failure) Error() string { return string(f) }

func run(o options, stdout, stderr io.Writer) error {
	if o.Log == nil {
		o.Log = obs.Discard()
	}
	defaulted := o.Corpus == "" && o.Fuzz == 0 && o.Replay == "" && !o.SelfTest
	if defaulted {
		o.Corpus = DefaultCorpus
		o.SelfTest = true
	}
	failures := 0

	if o.SelfTest {
		n, err := runSelfTest(o, stdout)
		if err != nil {
			return err
		}
		o.Log.Debug("selftest done", "failures", n)
		failures += n
	}
	if o.Corpus != "" {
		n, err := runCorpus(o, stdout)
		if err != nil {
			return err
		}
		o.Log.Debug("corpus done", "dir", o.Corpus, "failures", n)
		failures += n
	}
	if o.Replay != "" {
		n, err := runReplay(o, stdout)
		if err != nil {
			return err
		}
		o.Log.Debug("replay done", "file", o.Replay, "failures", n)
		failures += n
	}
	if o.Fuzz > 0 {
		n, err := runFuzz(o, stdout, stderr)
		if err != nil {
			return err
		}
		o.Log.Debug("fuzz done", "n", o.Fuzz, "seed", o.Seed, "failures", n)
		failures += n
	}
	if failures > 0 {
		return failure(fmt.Sprintf("%d check(s) failed", failures))
	}
	return nil
}

func runSelfTest(o options, w io.Writer) (failures int, err error) {
	results, err := audit.SelfTest()
	if err != nil {
		return 0, err
	}
	if o.JSON {
		if err := writeJSON(w, results); err != nil {
			return 0, err
		}
	}
	for _, r := range results {
		if !r.Caught {
			failures++
			if !o.JSON {
				fmt.Fprintf(w, "selftest FAIL %-16s expected one of %v, got %v\n",
					r.Mutation, r.Expected, r.Got)
			}
			continue
		}
		if !o.JSON && o.Verbose {
			fmt.Fprintf(w, "selftest ok   %-16s caught by %v\n", r.Mutation, r.Got)
		}
	}
	if !o.JSON {
		fmt.Fprintf(w, "selftest: %d/%d mutations caught\n", len(results)-failures, len(results))
	}
	return failures, nil
}

func runCorpus(o options, w io.Writer) (failures int, err error) {
	entries, paths, err := fuzz.LoadCorpus(o.Corpus)
	if err != nil {
		return 0, err
	}
	if len(entries) == 0 {
		return 0, fmt.Errorf("corpus %s has no *.json entries", o.Corpus)
	}
	for i, e := range entries {
		_, fp, rerr := fuzz.Replay(e)
		if rerr != nil {
			failures++
			fmt.Fprintf(w, "corpus FAIL %s: %v\n", paths[i], rerr)
			continue
		}
		if o.Verbose {
			fmt.Fprintf(w, "corpus ok   %s (fingerprint %v)\n", paths[i], fp)
		}
	}
	fmt.Fprintf(w, "corpus: %d/%d entries reproduced\n", len(entries)-failures, len(entries))
	return failures, nil
}

func runReplay(o options, w io.Writer) (failures int, err error) {
	e, err := fuzz.LoadEntry(o.Replay)
	if err != nil {
		return 0, err
	}
	res, _, rerr := fuzz.Replay(e)
	b, err := fuzz.ReportJSON(res)
	if err != nil {
		return 0, err
	}
	if _, err := w.Write(b); err != nil {
		return 0, err
	}
	if rerr != nil {
		fmt.Fprintf(w, "replay FAIL %s: %v\n", o.Replay, rerr)
		return 1, nil
	}
	return 0, nil
}

func runFuzz(o options, stdout, stderr io.Writer) (failures int, err error) {
	opts := fuzz.Options{N: o.Fuzz, Seed: o.Seed, OutDir: o.Out, Log: stderr}
	sum, err := fuzz.Fuzz(opts)
	if err != nil {
		return 0, err
	}
	if o.JSON {
		if err := writeJSON(stdout, sum); err != nil {
			return 0, err
		}
	} else {
		fmt.Fprintf(stdout, "fuzz: %d scenarios, %d audited runs, %d failure(s) (seed %d)\n",
			sum.Scenarios, sum.Runs, len(sum.Failures), o.Seed)
		for _, f := range sum.Failures {
			fmt.Fprintf(stdout, "fuzz FAIL %s (seed %#x): %v\n", f.Scenario, f.Seed, f.Fingerprint)
			if f.ReproPath != "" {
				fmt.Fprintf(stdout, "  reproducer: %s\n", f.ReproPath)
			}
		}
	}
	return len(sum.Failures), nil
}

func writeJSON(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}
