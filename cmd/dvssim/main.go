// Command dvssim runs a single DVS-EDF simulation and reports the
// energy breakdown, optionally with a Gantt chart of the schedule.
//
// Usage:
//
//	dvssim -policy lpshe -n 8 -u 0.7 -ratio 0.5
//	dvssim -policy all -taskset cnc -gantt
//	dvssim -policy dra -file tasks.json -levels "0.25,0.5,0.75,1"
//	dvssim -policy lpshe -u 0.9 -switch-time 0.1
//	dvssim -policy lpshe -taskset cnc -json   # machine-readable output
//	dvssim -policy all -stats   # per-policy scheduling histograms
//	dvssim -policy lpshe -trace out.json   # Chrome trace with decision provenance
//
// Built-in task sets: cnc, avionics, videophone, quickstart; -n/-u
// generate a random set instead; -file loads JSON (see cmd/taskgen).
//
// With -json, output is a JSON array of result objects in the same
// schema dvsd serves from /v1/simulate (see docs/api.md), so CLI runs
// and daemon responses are interchangeable inputs for downstream
// tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/obs"
	"dvsslack/internal/policies"
	"dvsslack/internal/rtm"
	"dvsslack/internal/server"
	"dvsslack/internal/sim"
	"dvsslack/internal/trace"
	"dvsslack/internal/workload"
)

// options collects the parsed command line; run consumes it.
type options struct {
	Policy  string
	TaskSet string
	File    string
	N       int
	U       float64
	Ratio   float64
	Seed    uint64
	SMin    float64
	Levels  string
	SwTime  float64
	SwCoef  float64
	Horizon float64
	Gantt   bool
	Stats   bool
	Strict  bool
	JSON    bool
	Trace   string
}

func main() {
	var o options
	flag.StringVar(&o.Policy, "policy", "lpshe", "policy spec (see internal/policies; e.g. nondvs, cc, lpshe, lpshe+dual) or 'all'")
	flag.StringVar(&o.TaskSet, "taskset", "", "built-in task set: cnc, avionics, videophone, quickstart")
	flag.StringVar(&o.File, "file", "", "task-set JSON file (overrides -taskset)")
	flag.IntVar(&o.N, "n", 8, "number of tasks for random generation")
	flag.Float64Var(&o.U, "u", 0.7, "worst-case utilization for random generation")
	flag.Float64Var(&o.Ratio, "ratio", 0.5, "BCET/WCET ratio: AET ~ U[ratio,1]*WCET")
	flag.Uint64Var(&o.Seed, "seed", 1, "random seed (task set and workload)")
	flag.Float64Var(&o.SMin, "smin", 0.1, "minimum processor speed")
	flag.StringVar(&o.Levels, "levels", "", "comma-separated discrete speed levels (last must be 1)")
	flag.Float64Var(&o.SwTime, "switch-time", 0, "speed transition stall time")
	flag.Float64Var(&o.SwCoef, "switch-energy", 0, "transition energy coefficient")
	flag.Float64Var(&o.Horizon, "horizon", 0, "simulation length (0 = one hyperperiod)")
	flag.BoolVar(&o.Gantt, "gantt", false, "print a Gantt chart of the schedule")
	flag.BoolVar(&o.Stats, "stats", false, "print per-policy instrumentation histograms (speeds, slack, idle intervals)")
	flag.BoolVar(&o.Strict, "strict", true, "fail on the first deadline miss")
	flag.BoolVar(&o.JSON, "json", false, "emit results as JSON (the dvsd /v1/simulate schema)")
	flag.StringVar(&o.Trace, "trace", "",
		"write the last policy's schedule as Chrome Trace Event JSON (chrome://tracing, Perfetto) with per-decision provenance flow events to this file")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dvssim: %v\n", err)
		os.Exit(1)
	}
}

// run executes the simulations o describes and writes the report to w.
func run(o options, w io.Writer) error {
	ts, err := loadTaskSet(o.File, o.TaskSet, o.N, o.U, o.Seed)
	if err != nil {
		return err
	}
	proc, err := buildProcessor(o.SMin, o.Levels)
	if err != nil {
		return err
	}
	proc.SwitchTime = o.SwTime
	proc.SwitchEnergyCoeff = o.SwCoef

	gen := workload.Uniform{Lo: o.Ratio, Hi: 1, Seed: o.Seed}
	pols, err := buildPolicies(o.Policy)
	if err != nil {
		return err
	}

	if !o.JSON {
		fmt.Fprintf(w, "task set %s: %d tasks, U=%.3f, hyperperiod=%s\n",
			ts.Name, ts.N(), ts.Utilization(), hyperStr(ts))
		fmt.Fprintf(w, "processor: %s  workload: %s\n\n", proc.Name(), gen.Name())
	}

	var names []string
	for _, t := range ts.Tasks {
		names = append(names, t.Name)
	}

	var ref sim.Result
	var jsonOut []server.SimResult
	for i, p := range pols {
		var rec *trace.Recorder
		var stats *obs.Recorder
		var fr *obs.FlightRecorder
		// -trace exports the last policy's run — the policy under
		// study (the leading runs are normalization references).
		exportTrace := o.Trace != "" && i == len(pols)-1
		if (o.Gantt && !o.JSON) || exportTrace {
			rec = trace.NewRecorder()
		}
		if o.Stats && !o.JSON {
			stats = obs.NewRecorder()
		}
		var observers []sim.Observer
		if rec != nil {
			observers = append(observers, rec)
		}
		if stats != nil {
			observers = append(observers, stats)
		}
		if exportTrace {
			fr = obs.NewFlightRecorder(1 << 16)
			observers = append(observers, fr.Observer(p))
		}
		observer := obs.Multi(observers...)
		res, err := sim.Run(sim.Config{
			TaskSet:         ts,
			Processor:       proc,
			Policy:          p,
			Workload:        gen,
			Horizon:         o.Horizon,
			StrictDeadlines: o.Strict,
			Observer:        observer,
		})
		if err != nil {
			return err
		}
		if i == 0 {
			ref = res
		}
		if exportTrace {
			if err := writeFlightTrace(o.Trace, rec, names, fr); err != nil {
				return err
			}
			if !o.JSON {
				fmt.Fprintf(w, "wrote %s trace to %s\n", res.Policy, o.Trace)
			}
		}
		if o.JSON {
			jsonOut = append(jsonOut, server.ResultFromSim(res))
			continue
		}
		fmt.Fprintf(w, "%-12s energy=%10.4f (busy %9.4f idle %8.4f switch %8.4f)"+
			" norm=%6.4f misses=%d switches=%d preempt=%d\n",
			res.Policy, res.Energy, res.BusyEnergy, res.IdleEnergy, res.SwitchEnergy,
			res.NormalizedTo(ref), res.DeadlineMisses, res.SpeedSwitches, res.Preemptions)
		if rec != nil && o.Gantt {
			rec.Gantt(w, names, res.Time, 96)
			fmt.Fprintln(w)
		}
		if stats != nil {
			stats.WriteText(w)
			fmt.Fprintln(w)
		}
	}
	if o.JSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonOut)
	}
	bound := dvs.Bound(ts, proc, gen, pickHorizon(o.Horizon, ts))
	if ref.Energy > 0 {
		fmt.Fprintf(w, "\nclairvoyant static bound: %.4f (normalized %.4f)\n", bound, bound/ref.Energy)
	}
	return nil
}

// writeFlightTrace exports one recorded run as Chrome Trace Event
// JSON with the flight recorder's decisions overlaid as flow events.
func writeFlightTrace(path string, rec *trace.Recorder, names []string, fr *obs.FlightRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.ChromeTraceFlight(f, names, fr.Records()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func pickHorizon(h float64, ts *rtm.TaskSet) float64 {
	if h > 0 {
		return h
	}
	return sim.DefaultHorizon(ts)
}

func hyperStr(ts *rtm.TaskSet) string {
	if h, ok := ts.Hyperperiod(); ok {
		return fmt.Sprintf("%g", h)
	}
	return "unknown"
}

func loadTaskSet(file, name string, n int, u float64, seed uint64) (*rtm.TaskSet, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rtm.ReadJSON(f)
	}
	switch name {
	case "cnc":
		return rtm.CNC(), nil
	case "avionics":
		return rtm.Avionics(), nil
	case "videophone":
		return rtm.Videophone(), nil
	case "quickstart":
		return rtm.Quickstart(), nil
	case "":
		return rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
	default:
		return nil, fmt.Errorf("unknown task set %q", name)
	}
}

func buildProcessor(smin float64, levels string) (*cpu.Processor, error) {
	if levels == "" {
		return cpu.Continuous(smin), nil
	}
	var speeds []float64
	for _, part := range strings.Split(levels, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad level %q: %v", part, err)
		}
		speeds = append(speeds, v)
	}
	return cpu.WithLevels(speeds...)
}

// buildPolicies resolves -policy through the central registry. The
// normalization reference (nonDVS) always runs first; 'all' selects
// the standard comparison suite.
func buildPolicies(spec string) ([]sim.Policy, error) {
	if spec == "all" {
		var out []sim.Policy
		for _, s := range []string{"nondvs", "static", "lpps", "cc", "la", "dra", "lpshe"} {
			p, err := policies.New(s)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		return out, nil
	}
	ref, err := policies.New("nondvs")
	if err != nil {
		return nil, err
	}
	out := []sim.Policy{ref}
	if spec != "nondvs" {
		p, err := policies.New(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
