// Command dvssim runs a single DVS-EDF simulation and reports the
// energy breakdown, optionally with a Gantt chart of the schedule.
//
// Usage:
//
//	dvssim -policy lpshe -n 8 -u 0.7 -ratio 0.5
//	dvssim -policy all -taskset cnc -gantt
//	dvssim -policy dra -file tasks.json -levels "0.25,0.5,0.75,1"
//	dvssim -policy lpshe -u 0.9 -switch-time 0.1
//
// Built-in task sets: cnc, avionics, videophone, quickstart; -n/-u
// generate a random set instead; -file loads JSON (see cmd/taskgen).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/trace"
	"dvsslack/internal/workload"
)

func main() {
	var (
		policy  = flag.String("policy", "lpshe", "policy: nondvs, static, lpps, cc, la, dra, lpshe, greedy, or 'all'")
		name    = flag.String("taskset", "", "built-in task set: cnc, avionics, videophone, quickstart")
		file    = flag.String("file", "", "task-set JSON file (overrides -taskset)")
		n       = flag.Int("n", 8, "number of tasks for random generation")
		u       = flag.Float64("u", 0.7, "worst-case utilization for random generation")
		ratio   = flag.Float64("ratio", 0.5, "BCET/WCET ratio: AET ~ U[ratio,1]*WCET")
		seed    = flag.Uint64("seed", 1, "random seed (task set and workload)")
		smin    = flag.Float64("smin", 0.1, "minimum processor speed")
		levels  = flag.String("levels", "", "comma-separated discrete speed levels (last must be 1)")
		swTime  = flag.Float64("switch-time", 0, "speed transition stall time")
		swCoef  = flag.Float64("switch-energy", 0, "transition energy coefficient")
		horizon = flag.Float64("horizon", 0, "simulation length (0 = one hyperperiod)")
		gantt   = flag.Bool("gantt", false, "print a Gantt chart of the schedule")
		strict  = flag.Bool("strict", true, "fail on the first deadline miss")
	)
	flag.Parse()

	ts, err := loadTaskSet(*file, *name, *n, *u, *seed)
	if err != nil {
		fail(err)
	}
	proc, err := buildProcessor(*smin, *levels)
	if err != nil {
		fail(err)
	}
	proc.SwitchTime = *swTime
	proc.SwitchEnergyCoeff = *swCoef

	gen := workload.Uniform{Lo: *ratio, Hi: 1, Seed: *seed}
	fmt.Printf("task set %s: %d tasks, U=%.3f, hyperperiod=%s\n",
		ts.Name, ts.N(), ts.Utilization(), hyperStr(ts))
	fmt.Printf("processor: %s  workload: %s\n\n", proc.Name(), gen.Name())

	pols, err := policies(*policy)
	if err != nil {
		fail(err)
	}
	var ref sim.Result
	for i, p := range pols {
		rec := trace.NewRecorder()
		res, err := sim.Run(sim.Config{
			TaskSet:         ts,
			Processor:       proc,
			Policy:          p,
			Workload:        gen,
			Horizon:         *horizon,
			StrictDeadlines: *strict,
			Observer:        rec,
		})
		if err != nil {
			fail(err)
		}
		if i == 0 {
			ref = res
		}
		fmt.Printf("%-12s energy=%10.4f (busy %9.4f idle %8.4f switch %8.4f)"+
			" norm=%6.4f misses=%d switches=%d preempt=%d\n",
			res.Policy, res.Energy, res.BusyEnergy, res.IdleEnergy, res.SwitchEnergy,
			res.NormalizedTo(ref), res.DeadlineMisses, res.SpeedSwitches, res.Preemptions)
		if *gantt {
			var names []string
			for _, t := range ts.Tasks {
				names = append(names, t.Name)
			}
			rec.Gantt(os.Stdout, names, res.Time, 96)
			fmt.Println()
		}
	}
	bound := dvs.Bound(ts, proc, gen, pickHorizon(*horizon, ts))
	if ref.Energy > 0 {
		fmt.Printf("\nclairvoyant static bound: %.4f (normalized %.4f)\n", bound, bound/ref.Energy)
	}
}

func pickHorizon(h float64, ts *rtm.TaskSet) float64 {
	if h > 0 {
		return h
	}
	return sim.DefaultHorizon(ts)
}

func hyperStr(ts *rtm.TaskSet) string {
	if h, ok := ts.Hyperperiod(); ok {
		return fmt.Sprintf("%g", h)
	}
	return "unknown"
}

func loadTaskSet(file, name string, n int, u float64, seed uint64) (*rtm.TaskSet, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rtm.ReadJSON(f)
	}
	switch name {
	case "cnc":
		return rtm.CNC(), nil
	case "avionics":
		return rtm.Avionics(), nil
	case "videophone":
		return rtm.Videophone(), nil
	case "quickstart":
		return rtm.Quickstart(), nil
	case "":
		return rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
	default:
		return nil, fmt.Errorf("unknown task set %q", name)
	}
}

func buildProcessor(smin float64, levels string) (*cpu.Processor, error) {
	if levels == "" {
		return cpu.Continuous(smin), nil
	}
	var speeds []float64
	for _, part := range strings.Split(levels, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad level %q: %v", part, err)
		}
		speeds = append(speeds, v)
	}
	return cpu.WithLevels(speeds...)
}

func policies(spec string) ([]sim.Policy, error) {
	mk := map[string]func() sim.Policy{
		"nondvs": func() sim.Policy { return &dvs.NonDVS{} },
		"static": func() sim.Policy { return &dvs.StaticEDF{} },
		"lpps":   func() sim.Policy { return &dvs.LppsEDF{} },
		"cc":     func() sim.Policy { return &dvs.CCEDF{} },
		"la":     func() sim.Policy { return &dvs.LAEDF{} },
		"dra":    func() sim.Policy { return &dvs.DRA{} },
		"lpshe":  func() sim.Policy { return core.NewLpSHE() },
		"greedy": func() sim.Policy { return core.NewLpSHEVariant(core.Greedy) },
	}
	if spec == "all" {
		order := []string{"nondvs", "static", "lpps", "cc", "la", "dra", "lpshe"}
		var out []sim.Policy
		for _, k := range order {
			out = append(out, mk[k]())
		}
		return out, nil
	}
	var out []sim.Policy
	out = append(out, mk["nondvs"]()) // normalization reference first
	if spec != "nondvs" {
		f, ok := mk[spec]
		if !ok {
			return nil, fmt.Errorf("unknown policy %q", spec)
		}
		out = append(out, f())
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dvssim: %v\n", err)
	os.Exit(1)
}
