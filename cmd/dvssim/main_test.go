package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvsslack/internal/server"
)

var update = flag.Bool("update", false, "rewrite golden files")

// jsonOptions is the fixed configuration of the golden test: fully
// deterministic (built-in task set, fixed seed, no wall-clock fields
// in the schema).
func jsonOptions() options {
	return options{
		Policy:  "all",
		TaskSet: "quickstart",
		Ratio:   0.5,
		Seed:    1,
		SMin:    0.1,
		Strict:  true,
		JSON:    true,
	}
}

func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(jsonOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "quickstart_all.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/dvssim -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from %s:\n got:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

func TestJSONSchemaMatchesDaemon(t *testing.T) {
	var buf bytes.Buffer
	if err := run(jsonOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	// The output must decode losslessly into the daemon's wire type.
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	var results []server.SimResult
	if err := dec.Decode(&results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("got %d results, want 7 (the 'all' suite)", len(results))
	}
	if results[0].Policy != "nonDVS" {
		t.Errorf("first result %q, want the nonDVS reference", results[0].Policy)
	}
	for _, r := range results {
		if r.Energy <= 0 || r.JobsCompleted == 0 {
			t.Errorf("%s: degenerate result %+v", r.Policy, r)
		}
		if r.DeadlineMisses != 0 {
			t.Errorf("%s: %d deadline misses on the quickstart set", r.Policy, r.DeadlineMisses)
		}
	}
}

func TestRunHumanOutput(t *testing.T) {
	o := jsonOptions()
	o.JSON = false
	o.Policy = "lpshe"
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"task set quickstart", "nonDVS", "lpSHE", "clairvoyant static bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("human output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsUnknownPolicy(t *testing.T) {
	o := jsonOptions()
	o.Policy = "no-such-policy"
	if err := run(o, &bytes.Buffer{}); err == nil {
		t.Error("unknown policy should fail")
	}
}
