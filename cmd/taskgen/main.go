// Command taskgen emits periodic task sets as JSON for use with
// dvssim -file or external tooling.
//
// Usage:
//
//	taskgen -n 8 -u 0.7 -seed 3            # random (UUniFast) set
//	taskgen -taskset avionics              # built-in benchmark set
//	taskgen -n 5 -u 0.9 -periods "10,20,40"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dvsslack/internal/rtm"
)

func main() {
	var (
		n       = flag.Int("n", 8, "number of tasks")
		u       = flag.Float64("u", 0.7, "worst-case utilization")
		seed    = flag.Uint64("seed", 1, "random seed")
		name    = flag.String("taskset", "", "emit a built-in set: cnc, avionics, videophone, quickstart")
		periods = flag.String("periods", "", "comma-separated period pool (default: built-in pool)")
	)
	flag.Parse()

	var (
		ts  *rtm.TaskSet
		err error
	)
	switch *name {
	case "cnc":
		ts = rtm.CNC()
	case "avionics":
		ts = rtm.Avionics()
	case "videophone":
		ts = rtm.Videophone()
	case "quickstart":
		ts = rtm.Quickstart()
	case "":
		cfg := rtm.DefaultGenConfig(*n, *u, *seed)
		if *periods != "" {
			cfg.Periods, err = parsePeriods(*periods)
			if err != nil {
				fail(err)
			}
		}
		ts, err = rtm.Generate(cfg)
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown task set %q", *name))
	}
	if err := ts.WriteJSON(os.Stdout); err != nil {
		fail(err)
	}
}

func parsePeriods(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad period %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "taskgen: %v\n", err)
	os.Exit(1)
}
