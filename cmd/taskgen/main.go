// Command taskgen emits periodic task sets as JSON for use with
// dvssim -file or external tooling.
//
// Usage:
//
//	taskgen -n 8 -u 0.7 -seed 3            # random (UUniFast) set
//	taskgen -taskset avionics              # built-in benchmark set
//	taskgen -n 5 -u 0.9 -periods "10,20,40"
//
// Output is deterministic: the same flags always produce the same
// bytes, so generated sets can be committed as test fixtures.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"dvsslack/internal/obs"
	"dvsslack/internal/rtm"
)

type options struct {
	n       int
	u       float64
	seed    uint64
	name    string
	periods string

	// log receives generation diagnostics (nil = discard); main wires
	// the shared obs logger configured by -log-level/-log-format.
	log *slog.Logger
}

func main() {
	var o options
	flag.IntVar(&o.n, "n", 8, "number of tasks")
	flag.Float64Var(&o.u, "u", 0.7, "worst-case utilization, in (0, 1]")
	flag.Uint64Var(&o.seed, "seed", 1, "random seed")
	flag.StringVar(&o.name, "taskset", "", "emit a built-in set: cnc, avionics, videophone, quickstart")
	flag.StringVar(&o.periods, "periods", "", "comma-separated period pool (default: built-in pool)")
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logCfg.New(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taskgen: %v\n", err)
		os.Exit(2)
	}
	o.log = logger

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "taskgen: %v\n", err)
		os.Exit(1)
	}
}

func run(o options, w io.Writer) error {
	if o.log == nil {
		o.log = obs.Discard()
	}
	ts, err := build(o)
	if err != nil {
		return err
	}
	o.log.Debug("task set generated",
		"name", ts.Name, "tasks", ts.N(), "utilization", ts.Utilization(), "seed", o.seed)
	return ts.WriteJSON(w)
}

func build(o options) (*rtm.TaskSet, error) {
	switch o.name {
	case "cnc":
		return rtm.CNC(), nil
	case "avionics":
		return rtm.Avionics(), nil
	case "videophone":
		return rtm.Videophone(), nil
	case "quickstart":
		return rtm.Quickstart(), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown task set %q (want cnc, avionics, videophone, or quickstart)", o.name)
	}

	// Validate generator inputs here so the errors name the flags the
	// user typed, not the library internals.
	if o.n <= 0 {
		return nil, fmt.Errorf("-n must be a positive task count, got %d", o.n)
	}
	if !(o.u > 0) || o.u > 1 {
		return nil, fmt.Errorf("-u must be a utilization in (0, 1], got %v", o.u)
	}
	cfg := rtm.DefaultGenConfig(o.n, o.u, o.seed)
	if o.periods != "" {
		ps, err := parsePeriods(o.periods)
		if err != nil {
			return nil, err
		}
		cfg.Periods = ps
	}
	return rtm.Generate(cfg)
}

func parsePeriods(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad period %q: %v", part, err)
		}
		if !(v > 0) {
			return nil, fmt.Errorf("bad period %q: must be positive", part)
		}
		out = append(out, v)
	}
	return out, nil
}
