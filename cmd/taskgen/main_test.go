package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runOK(t *testing.T, o options) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatalf("run(%+v): %v", o, err)
	}
	return buf.Bytes()
}

// TestDeterministicOutput: identical flags must produce byte-identical
// JSON, and a different seed must not.
func TestDeterministicOutput(t *testing.T) {
	o := options{n: 8, u: 0.7, seed: 3}
	a := runOK(t, o)
	b := runOK(t, o)
	if !bytes.Equal(a, b) {
		t.Error("same flags produced different bytes")
	}
	o.seed = 4
	if bytes.Equal(a, runOK(t, o)) {
		t.Error("different seed produced identical bytes")
	}
}

func TestGeneratedSetShape(t *testing.T) {
	out := runOK(t, options{n: 5, u: 0.6, seed: 1, periods: "10,20,40"})
	var ts struct {
		Tasks []struct {
			WCET   float64 `json:"wcet"`
			Period float64 `json:"period"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal(out, &ts); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(ts.Tasks) != 5 {
		t.Fatalf("got %d tasks, want 5", len(ts.Tasks))
	}
	var u float64
	for _, task := range ts.Tasks {
		if task.Period != 10 && task.Period != 20 && task.Period != 40 {
			t.Errorf("period %v not in the requested pool", task.Period)
		}
		u += task.WCET / task.Period
	}
	if u > 0.6+1e-9 {
		t.Errorf("total utilization %v exceeds requested 0.6", u)
	}
}

func TestBuiltinSets(t *testing.T) {
	for _, name := range []string{"cnc", "avionics", "videophone", "quickstart"} {
		out := runOK(t, options{name: name})
		if !json.Valid(out) {
			t.Errorf("%s: invalid JSON", name)
		}
	}
}

// TestInvalidFlags: bad -n/-u/-periods/-taskset values must fail with
// errors that name the offending flag or value.
func TestInvalidFlags(t *testing.T) {
	cases := []struct {
		o    options
		want string
	}{
		{options{n: 0, u: 0.7}, "-n"},
		{options{n: -3, u: 0.7}, "-n"},
		{options{n: 4, u: 0}, "-u"},
		{options{n: 4, u: 1.2}, "-u"},
		{options{n: 4, u: -0.5}, "-u"},
		{options{n: 4, u: 0.7, periods: "10,abc"}, "abc"},
		{options{n: 4, u: 0.7, periods: "10,-5"}, "-5"},
		{options{name: "bogus"}, "bogus"},
	}
	for _, c := range cases {
		err := run(c.o, &bytes.Buffer{})
		if err == nil {
			t.Errorf("run(%+v) succeeded, want error", c.o)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%+v) error %q does not mention %q", c.o, err, c.want)
		}
	}
}
