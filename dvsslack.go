// Package dvsslack is a library for energy-aware scheduling of
// periodic hard real-time task sets on variable-voltage processors.
// It reproduces the DATE 2002 paper "A Dynamic Voltage Scaling
// Algorithm for Dynamic-Priority Hard Real-Time Systems Using Slack
// Time Analysis": an EDF scheduler whose per-job execution speed is
// derived from an exact online slack-time analysis (the lpSHE
// algorithm), together with the classical inter-task DVS-EDF
// baselines it was evaluated against, a discrete-event simulator,
// processor/energy models, workload generators, and the full
// benchmark harness that regenerates the paper's tables and figures.
//
// # Quick start
//
//	ts := dvsslack.NewTaskSet("demo",
//	    dvsslack.NewTask("sensor", 1, 4),    // WCET 1, period 4
//	    dvsslack.NewTask("control", 2, 12),
//	)
//	res, err := dvsslack.Simulate(dvsslack.Config{
//	    TaskSet:   ts,
//	    Processor: dvsslack.ContinuousProcessor(0.1),
//	    Policy:    dvsslack.NewLpSHE(),
//	    Workload:  dvsslack.UniformWorkload(0.5, 1, 42),
//	})
//
// res.Energy is the consumed energy (normalized units, full-speed
// busy power = 1); res.DeadlineMisses is guaranteed to be zero for
// every EDF-feasible task set.
//
// The implementation lives in internal/ packages (core, sim, dvs,
// cpu, rtm, ...); this package re-exports the user-facing surface.
package dvsslack

import (
	"dvsslack/internal/analysis"
	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/experiment"
	"dvsslack/internal/opt"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// Task model re-exports.
type (
	// Task is a periodic hard real-time task (WCET, period,
	// optional constrained deadline).
	Task = rtm.Task
	// TaskSet is an ordered collection of Tasks.
	TaskSet = rtm.TaskSet
	// Job is one released task instance.
	Job = rtm.Job
	// GenConfig parameterizes random task-set generation.
	GenConfig = rtm.GenConfig
)

// Simulation re-exports.
type (
	// Config describes one simulation run.
	Config = sim.Config
	// Result aggregates one simulation run.
	Result = sim.Result
	// Policy selects execution speeds at scheduling points.
	Policy = sim.Policy
	// JobState is a released job plus execution progress.
	JobState = sim.JobState
	// System is the policy-facing view of a running simulation.
	System = sim.System
)

// Processor model re-exports.
type (
	// Processor is the variable-voltage CPU model.
	Processor = cpu.Processor
	// PowerModel maps speed to normalized power.
	PowerModel = cpu.PowerModel
)

// WorkloadGenerator produces per-job actual execution times.
type WorkloadGenerator = workload.Generator

// NewTask returns an implicit-deadline task with the given worst-case
// execution time and period.
func NewTask(name string, wcet, period float64) Task { return rtm.NewTask(name, wcet, period) }

// NewTaskSet builds a task set, naming anonymous tasks T1..Tn.
func NewTaskSet(name string, tasks ...Task) *TaskSet { return rtm.NewTaskSet(name, tasks...) }

// GenerateTaskSet produces a random task set (UUniFast utilizations,
// pooled periods).
func GenerateTaskSet(cfg GenConfig) (*TaskSet, error) { return rtm.Generate(cfg) }

// Simulate executes one run and returns its aggregate result.
func Simulate(cfg Config) (Result, error) { return sim.Run(cfg) }

// ContinuousProcessor returns a continuously variable-speed processor
// with minimum speed smin, the cubic power model, and default idle
// power.
func ContinuousProcessor(smin float64) *Processor { return cpu.Continuous(smin) }

// DiscreteProcessor returns a processor restricted to the given speed
// levels (the highest must be 1); requested speeds round up to the
// next level, preserving deadline guarantees.
func DiscreteProcessor(levels ...float64) (*Processor, error) { return cpu.WithLevels(levels...) }

// NewLpSHE returns the paper's slack-time-analysis DVS policy.
func NewLpSHE() Policy { return core.NewLpSHE() }

// Baseline policy constructors.
func NewNonDVS() Policy      { return &dvs.NonDVS{} }
func NewStaticEDF() Policy   { return &dvs.StaticEDF{} }
func NewLppsEDF() Policy     { return &dvs.LppsEDF{} }
func NewCCEDF() Policy       { return &dvs.CCEDF{} }
func NewLAEDF() Policy       { return &dvs.LAEDF{} }
func NewDRA() Policy         { return &dvs.DRA{} }
func NewFeedbackEDF() Policy { return dvs.NewFeedbackEDF() }

// WithOverheadGuard wraps a policy with switch hysteresis for
// processors with non-zero SwitchTime.
func WithOverheadGuard(p Policy) Policy { return dvs.NewOverheadGuard(p) }

// WithDualLevel wraps a policy with the Ishihara-Yasuura two-level
// emulation of continuous speeds on discrete-level processors.
func WithDualLevel(p Policy) Policy { return dvs.NewDualLevel(p) }

// WithCriticalSpeedFloor wraps a policy with the leakage-aware
// critical-speed floor: on processors with static leakage power the
// wrapped policy never stretches below the energy-efficient speed.
func WithCriticalSpeedFloor(p Policy) Policy { return dvs.NewEfficientFloor(p) }

// UniformWorkload returns the standard dynamic workload: each job's
// actual execution time is WCET times a uniform draw from [lo, hi].
func UniformWorkload(lo, hi float64, seed uint64) WorkloadGenerator {
	return workload.Uniform{Lo: lo, Hi: hi, Seed: seed}
}

// EnergyBound returns the clairvoyant constant-speed lower bound on
// energy for the workload over [0, horizon) (see internal/dvs.Bound).
func EnergyBound(ts *TaskSet, proc *Processor, gen WorkloadGenerator, horizon float64) float64 {
	return dvs.Bound(ts, proc, gen, horizon)
}

// OptimalEnergy returns the YDS clairvoyant offline-optimal energy
// for the trace over [0, horizon): the true per-workload floor no
// online policy can beat (see internal/opt).
func OptimalEnergy(ts *TaskSet, proc *Processor, gen WorkloadGenerator, horizon float64) (float64, error) {
	return opt.ForTrace(ts, proc, gen, horizon, horizon)
}

// EDFSchedulable reports whether the task set is schedulable by
// preemptive EDF on a unit-speed processor.
func EDFSchedulable(ts *TaskSet) bool { return analysis.EDFSchedulable(ts) }

// MinConstantSpeed returns the slowest constant speed keeping the
// task set EDF-schedulable in the worst case.
func MinConstantSpeed(ts *TaskSet) float64 { return analysis.MinConstantSpeed(ts) }

// RateMonotonicPriorities returns the RM priority assignment for use
// with Config.FixedPriorities.
func RateMonotonicPriorities(ts *TaskSet) []int { return analysis.RateMonotonicPriorities(ts) }

// RMSchedulable reports fixed-priority schedulability under RM by
// exact response-time analysis.
func RMSchedulable(ts *TaskSet) bool { return analysis.RMSchedulable(ts) }

// Benchmark task sets of the evaluation.
func CNCTaskSet() *TaskSet        { return rtm.CNC() }
func AvionicsTaskSet() *TaskSet   { return rtm.Avionics() }
func VideophoneTaskSet() *TaskSet { return rtm.Videophone() }

// RunExperiment executes one of the paper's table/figure
// reproductions by ID (t1, f3, f4, f5, t2, f6, f7, t3, t4, f8); see
// DESIGN.md §3 and cmd/dvsexp.
func RunExperiment(id string, quick bool) (*experiment.Report, error) {
	return experiment.Run(id, experiment.Options{Quick: quick})
}

// ExperimentIDs lists the available experiment reproductions in
// presentation order.
func ExperimentIDs() []string { return experiment.IDs() }
