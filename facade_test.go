package dvsslack

import (
	"math"
	"testing"
)

// TestFacadeSurface exercises the re-exported API end to end: task
// construction, generation, analysis, all policy constructors,
// wrappers, bounds, and the experiment registry.
func TestFacadeSurface(t *testing.T) {
	ts, err := GenerateTaskSet(GenConfig{N: 5, Utilization: 0.6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !EDFSchedulable(ts) {
		t.Fatal("generated set should be EDF-schedulable")
	}
	if s := MinConstantSpeed(ts); math.Abs(s-0.6) > 1e-9 {
		t.Errorf("MinConstantSpeed = %v, want 0.6", s)
	}

	proc := ContinuousProcessor(0.1)
	wl := UniformWorkload(0.4, 1, 4)
	policies := []Policy{
		NewNonDVS(), NewStaticEDF(), NewLppsEDF(), NewCCEDF(),
		NewLAEDF(), NewDRA(), NewFeedbackEDF(), NewLpSHE(),
		WithOverheadGuard(NewLpSHE()),
	}
	var ref Result
	for i, p := range policies {
		res, err := Simulate(Config{TaskSet: ts, Processor: proc, Policy: p, Workload: wl})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.DeadlineMisses != 0 {
			t.Errorf("%s: misses", p.Name())
		}
		if i == 0 {
			ref = res
		} else if res.Energy > ref.Energy*1.0001 {
			t.Errorf("%s exceeds non-DVS energy", p.Name())
		}
	}

	horizon := ref.Time
	flat := EnergyBound(ts, proc, wl, horizon)
	yds, err := OptimalEnergy(ts, proc, wl, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if flat > yds+1e-9 {
		t.Errorf("flat bound %v above YDS %v", flat, yds)
	}
	if yds > ref.Energy {
		t.Errorf("YDS %v above non-DVS %v", yds, ref.Energy)
	}
}

func TestFacadeDiscreteAndDual(t *testing.T) {
	proc, err := DiscreteProcessor(0.25, 0.5, 0.75, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := CNCTaskSet()
	wl := UniformWorkload(0.5, 1, 2)
	up, err := Simulate(Config{TaskSet: ts, Processor: proc, Policy: NewLpSHE(), Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	dual, err := Simulate(Config{TaskSet: ts, Processor: proc, Policy: WithDualLevel(NewLpSHE()), Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	if up.DeadlineMisses != 0 || dual.DeadlineMisses != 0 {
		t.Fatal("misses on discrete processor")
	}
	if dual.Energy > up.Energy*1.0001 {
		t.Errorf("dual-level %v should not exceed quantize-up %v", dual.Energy, up.Energy)
	}
}

func TestFacadeBenchmarkSets(t *testing.T) {
	for _, ts := range []*TaskSet{CNCTaskSet(), AvionicsTaskSet(), VideophoneTaskSet()} {
		if err := ts.Validate(); err != nil {
			t.Errorf("%s: %v", ts.Name, err)
		}
	}
}

func TestFacadeFixedPriority(t *testing.T) {
	ts := NewTaskSet("rm",
		NewTask("fast", 1, 4),
		NewTask("slow", 2, 12),
	)
	if !RMSchedulable(ts) {
		t.Fatal("set should pass RTA")
	}
	res, err := Simulate(Config{
		TaskSet:         ts,
		Processor:       ContinuousProcessor(0.1),
		Policy:          NewNonDVS(),
		FixedPriorities: RateMonotonicPriorities(ts),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Error("RM-schedulable set missed deadlines in simulation")
	}
}

func TestFacadeExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 10 {
		t.Fatalf("expected at least 10 experiments, got %v", ids)
	}
	// Spot-run the cheapest one through the facade.
	r, err := RunExperiment("t1", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) == 0 {
		t.Error("t1 produced no tables")
	}
}
